#include "runtime/router.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/online.hpp"
#include "data/stream.hpp"
#include "platform/cpu_executor.hpp"
#include "runtime/resilient.hpp"
#include "tpu/device.hpp"
#include "tpu/faults.hpp"

namespace hdc::runtime {

namespace {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HDC_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  HDC_CHECK(out.good(), "failed writing '" + path + "'");
}

/// Feeds the router's simulated clock to the structured log for the lifetime
/// of the session (same convention as the single-device serve loop).
class LogClockScope {
 public:
  explicit LogClockScope(const double* clock) {
    log::set_time_provider([clock] { return *clock; });
  }
  ~LogClockScope() { log::set_time_provider(nullptr); }
  LogClockScope(const LogClockScope&) = delete;
  LogClockScope& operator=(const LogClockScope&) = delete;
};

/// A monitor admission record buffered until the (lazily sized) monitor
/// exists; replayed in order at construction.
struct AdmissionRecord {
  SimDuration at;
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t degraded = 0;
};

/// A `ServingMonitor` whose window span / SLO target auto-size from the
/// first served batch (the single-device serve loop's lazy convention, one
/// instance per shard plus one fleet-wide aggregate).
struct LazyMonitor {
  std::optional<obs::ServingMonitor> monitor;
  std::vector<AdmissionRecord> pending;

  void record_admission(SimDuration at, std::uint64_t offered, std::uint64_t shed,
                        std::uint64_t expired, std::uint64_t degraded) {
    if (monitor.has_value()) {
      monitor->record_admission(at, offered, shed, expired, degraded);
    } else {
      pending.push_back({at, offered, shed, expired, degraded});
    }
  }

  void init(const obs::MonitorConfig& config) {
    monitor.emplace(config);
    for (const AdmissionRecord& rec : pending) {
      monitor->record_admission(rec.at, rec.offered, rec.shed, rec.expired,
                                rec.degraded);
    }
    pending.clear();
  }
};

/// One tenant: its own drifting data distribution, its frozen scoring model
/// (margins for the drift monitor) and its lowered deployment image.
struct Tenant {
  core::OnlineLearner scorer;
  CoDesignFramework::LoweredModel model;
  data::DriftStream stream;
  SimDuration nominal_device;  ///< fault-free interactive per-sample cost
  SimDuration nominal_host;    ///< float model per-sample cost on the CPU
};

/// One offered request: a chunk of one tenant's stream.
struct FleetRequest {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  SimDuration arrival;
  data::Dataset data;
};

/// One device behind the router: a full simulated accelerator with its own
/// fault stream, health state machine, bounded queue and SLO monitor.
struct Shard {
  Shard(const SystemConfig& system, const tpu::FaultProfile& faults,
        const HealthConfig& health_config)
      : device(system.systolic, system.link, system.sram_bytes),
        health(health_config) {
    device.set_fault_injector(tpu::FaultInjector(faults));
  }

  tpu::EdgeTpuDevice device;
  DeviceHealthTracker health;
  std::deque<FleetRequest> queue;
  std::uint64_t queued_samples = 0;
  SimDuration free_at;
  LazyMonitor monitor;
  FleetShardResult result;
};

/// Splits a member's pre-service wait into the device-busy portion
/// (`kQueueWait`, the time the shard was still serving earlier batches) and
/// the batching hold (`kBatchWait`, time spent waiting for the micro-batch
/// to coalesce or age out). The two spans sum exactly to the wait.
void append_wait_spans(obs::RequestTrace& rt, SimDuration arrival,
                       SimDuration free_before, SimDuration dispatch) {
  const SimDuration wait = dispatch - arrival;
  if (wait.is_zero()) {
    return;
  }
  SimDuration queue_wait;
  if (free_before > arrival) {
    queue_wait = std::min(wait, free_before - arrival);
  }
  const SimDuration batch_wait = wait - queue_wait;
  if (!queue_wait.is_zero()) {
    rt.append(obs::Stage::kQueueWait, queue_wait);
  }
  if (!batch_wait.is_zero()) {
    rt.append(obs::Stage::kBatchWait, batch_wait);
  }
}

/// Appends the batch's service-stage spans from the resilience report. The
/// appended durations sum exactly to `report.total()`: pipelined batches
/// report `weight_upload + pipelined_makespan + retry_backoff`, serial ones
/// the plain stage sum (mirrors the resilient executor's own span shapes).
void append_service_spans(obs::RequestTrace& rt, const ResilienceReport& report) {
  const tpu::ExecutionStats& d = report.device_stats;
  if (!d.pipelined_makespan.is_zero()) {
    if (!d.weight_upload.is_zero()) {
      rt.append(obs::Stage::kTransfer, d.weight_upload);
    }
    rt.append(obs::Stage::kDevice, d.pipelined_makespan);
    if (!d.retry_backoff.is_zero()) {
      rt.append(obs::Stage::kBackoff, d.retry_backoff);
    }
  } else {
    if (!d.retry_backoff.is_zero()) {
      rt.append(obs::Stage::kBackoff, d.retry_backoff);
    }
    if (!d.transfer.is_zero()) {
      rt.append(obs::Stage::kTransfer, d.transfer);
    }
    if (!d.weight_upload.is_zero()) {
      rt.append(obs::Stage::kTransfer, d.weight_upload);
    }
    if (!d.device_compute.is_zero()) {
      rt.append(obs::Stage::kDevice, d.device_compute);
    }
    if (!d.host_compute.is_zero()) {
      rt.append(obs::Stage::kDeviceHost, d.host_compute);
    }
  }
  if (!report.cpu_fallback_time.is_zero()) {
    rt.append(obs::Stage::kHost, report.cpu_fallback_time);
  }
}

std::string shard_snapshot_path(const std::string& dir, std::uint32_t index) {
  char name[48];
  std::snprintf(name, sizeof(name), "shard_%02u_snapshot.json", index);
  return (std::filesystem::path(dir) / name).string();
}

}  // namespace

FleetResult serve_fleet(const CoDesignFramework& framework, const ServeConfig& config) {
  config.validate();
  const FleetConfig& fleet = config.fleet;
  const data::SyntheticSpec& spec = config.stream.spec;
  HDC_CHECK(config.admission.offered_load > 0.0,
            "the fleet router is open-loop only: set admission.offered_load > 0");
  HDC_CHECK(!config.online_updates,
            "the fleet serves frozen per-tenant models (no online updates)");
  HDC_CHECK(config.checkpoint_path.empty() && config.resume_from.empty(),
            "fleet serving does not checkpoint");

  const platform::CpuExecutor cpu(framework.config().host);
  tpu::InvokeOptions nominal_options;
  nominal_options.mode = tpu::ExecutionMode::kFunctional;
  nominal_options.interactive = true;

  // ---- shards: one full simulated accelerator per device -------------------
  // Each device draws faults from its own seed offset, so a flaky fleet does
  // not fail in lockstep; health/quarantine state is per shard.
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(fleet.num_devices);
  for (std::uint32_t d = 0; d < fleet.num_devices; ++d) {
    tpu::FaultProfile profile = config.faults;
    profile.seed += d;
    auto shard = std::make_unique<Shard>(framework.config(), profile, config.health);
    shard->result.device_index = d;
    shards.push_back(std::move(shard));
  }

  // ---- tenants: independent streams, independently trained models ----------
  std::vector<Tenant> tenants;
  tenants.reserve(fleet.num_tenants);
  for (std::uint32_t t = 0; t < fleet.num_tenants; ++t) {
    data::StreamConfig stream_config = config.stream;
    stream_config.spec.seed += t;
    core::OnlineConfig learner_config = config.learner;
    learner_config.seed += t;
    data::DriftStream stream(stream_config);
    core::OnlineLearner learner(spec.features, spec.classes, learner_config);
    data::Dataset representative;
    for (std::uint32_t w = 0; w < config.warmup_chunks; ++w) {
      data::Dataset chunk = stream.next_chunk();
      learner.learn_batch(chunk);
      if (w == 0) {
        representative = std::move(chunk);
      }
    }
    CoDesignFramework::LoweredModel lowered = framework.lower_classifier(
        learner.freeze(), representative, "tenant_" + std::to_string(t));
    const SimDuration nominal_device =
        shards.front()
            ->device
            .per_sample_cost(lowered.compiled, nominal_options,
                             framework.config().host.host_cost_model())
            .total();
    const SimDuration nominal_host = cpu.per_sample_time(lowered.float_model);
    tenants.push_back(Tenant{std::move(learner), std::move(lowered), std::move(stream),
                             nominal_device, nominal_host});
  }

  // Offered load stays in single-device full-tier service-rate units (tenant
  // 0's interactive per-sample cost), exactly like single-device serving —
  // which is what makes "batched 4-device at load L" and "unbatched 1-device
  // at load L" the same offered stream.
  const SimDuration arrival_period =
      tenants.front().nominal_device *
      (static_cast<double>(config.stream.chunk_size) / config.admission.offered_load);

  // Zipf(skew) tenant popularity; skew 0 degenerates to uniform.
  std::vector<double> tenant_cdf(fleet.num_tenants);
  {
    double acc = 0.0;
    for (std::uint32_t t = 0; t < fleet.num_tenants; ++t) {
      acc += std::pow(static_cast<double>(t + 1), -fleet.tenant_skew);
      tenant_cdf[t] = acc;
    }
  }
  Rng tenant_rng(fleet.seed);
  const auto draw_tenant = [&]() -> std::uint32_t {
    const double u = tenant_rng.next_double() * tenant_cdf.back();
    const auto it = std::upper_bound(tenant_cdf.begin(), tenant_cdf.end(), u);
    const auto idx = static_cast<std::uint32_t>(it - tenant_cdf.begin());
    return std::min(idx, fleet.num_tenants - 1);
  };

  FleetResult result;
  const std::uint64_t total_offered = config.serve_chunks;
  std::vector<obs::RequestTrace> traces(total_offered);
  std::vector<std::vector<std::uint32_t>> preds(total_offered);
  obs::ExemplarStore exemplar_store(config.exemplars);
  LazyMonitor fleet_monitor;
  // Model quality: one fleet-wide aggregate (outcomes/calibration only —
  // tenants encode with different seeds, so cross-tenant dimensions are not
  // comparable and `dim` stays 0) plus one full instance per tenant.
  std::optional<obs::ModelQualityStats> fleet_stats;
  std::vector<std::optional<obs::ModelQualityStats>> tenant_stats(fleet.num_tenants);
  std::uint64_t correct_total = 0;

  // Energy: one fleet-wide accountant (lazily sized off the fleet monitor's
  // resolved window, pending records replayed in order) plus plain integer
  // picojoule ledgers per shard and per tenant. The ledgers fold the *same*
  // deterministic `attribute_energy` atoms the accountant records, so they
  // sum bit-exactly to the fleet total on every outcome path.
  std::optional<obs::EnergyAccountant> fleet_energy;
  std::vector<obs::EnergyAccountant::Request> pending_energy;
  std::vector<std::int64_t> tenant_energy(fleet.num_tenants, 0);

  double log_clock = 0.0;
  LogClockScope log_scope(&log_clock);

  /// Charges a finalized request's energy to its shard and tenant ledgers
  /// and to the fleet accountant (or the pending buffer before lazy init).
  /// Must run after `rt.finalize` and before `finish_request` moves `rt`.
  const auto record_energy = [&](Shard& shard, std::uint32_t tenant_index,
                                 const obs::RequestTrace& rt) {
    obs::EnergyAccountant::Request ereq;
    ereq.at = rt.end;
    ereq.attribution = rt.attribution;
    ereq.outcome = rt.outcome;
    ereq.samples = rt.outcome == obs::RequestOutcome::kServed ? rt.samples : 0;
    ereq.degraded = rt.tier != 0;
    ereq.request_id = static_cast<std::int64_t>(rt.request_id);
    const std::int64_t pj =
        obs::attribute_energy(rt.attribution, config.energy.profile).total_pj();
    shard.result.energy_pj += pj;
    tenant_energy[tenant_index] += pj;
    if (fleet_energy.has_value()) {
      fleet_energy->record(ereq);
    } else {
      pending_energy.push_back(std::move(ereq));
    }
  };

  const auto finish_request = [&](obs::RequestTrace&& rt,
                                  std::optional<obs::ExemplarReason> reason) {
    result.attribution_total += rt.attribution;
    ++result.requests_traced;
    if (reason.has_value()) {
      exemplar_store.offer(*reason, rt);
    }
    traces[rt.request_id] = std::move(rt);
  };

  const auto monitor_config = [&](SimDuration batch_total, SimDuration per_sample) {
    obs::MonitorConfig mc = config.monitor;
    mc.num_classes = spec.classes;
    if (mc.window.span.is_zero()) {
      mc.window.span = batch_total * 4.0;
    }
    if (mc.window.buckets == 0) {
      mc.window.buckets = 16;
    }
    if (mc.slo_latency.is_zero()) {
      mc.slo_latency = per_sample * 1.5;
    }
    return mc;
  };

  // Shares the fleet monitor's resolved window and lifecycle. Each tenant
  // instance sees its own frozen scorer model once (frozen fleet = one
  // observe_model each, no refreshes).
  const auto init_model_stats = [&](const obs::WindowConfig& window) {
    obs::ModelStatsConfig msc = config.model_stats;
    msc.num_classes = spec.classes;
    msc.window = window;
    msc.dim = 0;
    fleet_stats.emplace(msc);
    msc.dim = config.learner.dim;
    for (std::uint32_t t = 0; t < fleet.num_tenants; ++t) {
      tenant_stats[t].emplace(msc);
      tenant_stats[t]->observe_model(tenants[t].scorer.model().class_hypervectors());
    }
  };

  // ---- placement -----------------------------------------------------------
  const auto least_loaded = [&]() -> Shard& {
    Shard* best = shards.front().get();
    for (const auto& shard : shards) {
      if (shard->queued_samples < best->queued_samples ||
          (shard->queued_samples == best->queued_samples &&
           shard->free_at < best->free_at)) {
        best = shard.get();
      }
    }
    return *best;
  };
  const auto place = [&](std::uint64_t id, std::uint32_t tenant) -> Shard& {
    switch (fleet.placement) {
      case PlacementPolicy::kRoundRobin:
        return *shards[static_cast<std::size_t>(id % shards.size())];
      case PlacementPolicy::kLeastLoaded:
        return least_loaded();
      case PlacementPolicy::kCacheAware:
        break;
    }
    // Tenant stickiness via SRAM residency (the parameter cache holds one
    // active model, so "device that last served this tenant" and "device
    // with the tenant's weights warm" coincide). The uncounted residency
    // probe keeps placement from perturbing the cache hit/miss telemetry.
    for (const auto& shard : shards) {
      if (shard->queue.size() < config.admission.queue_capacity &&
          shard->device.memory().is_resident(tenants[tenant].model.compiled.id)) {
        return *shard;
      }
    }
    return least_loaded();
  };

  // ---- dispatch readiness --------------------------------------------------
  std::uint64_t next_arrival = 0;
  // A shard's head batch is dispatched as soon as the device is free once the
  // batch cannot grow further: the same-tenant run hit `batch_max_chunks`, a
  // different tenant is queued behind it, or no arrivals remain. Only a
  // growable run is held for `batch_max_age` past its head's arrival.
  const auto dispatch_at = [&](const Shard& shard) -> SimDuration {
    const FleetRequest& head = shard.queue.front();
    std::size_t run = 1;
    while (run < shard.queue.size() && run < fleet.batch_max_chunks &&
           shard.queue[run].tenant == head.tenant) {
      ++run;
    }
    const bool full = run >= fleet.batch_max_chunks;
    const bool growable = run == shard.queue.size() && next_arrival < total_offered;
    if (full || !growable) {
      return std::max(shard.free_at, head.arrival);
    }
    return std::max(shard.free_at, head.arrival + fleet.batch_max_age);
  };

  // ---- one micro-batch: coalesce, expire, swap, serve, account -------------
  const auto dispatch = [&](Shard& shard, SimDuration td) {
    const SimDuration free_before = shard.free_at;
    const std::uint32_t tenant_index = shard.queue.front().tenant;
    Tenant& tenant = tenants[tenant_index];
    std::vector<FleetRequest> batch;
    while (!shard.queue.empty() && batch.size() < fleet.batch_max_chunks &&
           shard.queue.front().tenant == tenant_index) {
      shard.queued_samples -= shard.queue.front().data.num_samples();
      batch.push_back(std::move(shard.queue.front()));
      shard.queue.pop_front();
    }
    log_clock = td.to_seconds();

    const ServeTier tier = shard.health.admit_tier(td, shard.queue.size(),
                                                   config.admission.degrade_backlog);
    if (shard.monitor.monitor.has_value()) {
      shard.monitor.monitor->set_quarantined(
          shard.health.state() == DeviceHealth::kQuarantined, td);
    }

    // Per-member deadline check (the batch dispatches together, but each
    // member's budget runs from its own arrival): members that cannot finish
    // even their first sample expire unserved, the rest still form a batch.
    const SimDuration deadline = config.admission.deadline;
    const SimDuration nominal =
        tier == ServeTier::kHost ? tenant.nominal_host : tenant.nominal_device;
    std::vector<FleetRequest> live;
    live.reserve(batch.size());
    for (FleetRequest& req : batch) {
      const SimDuration wait = td - req.arrival;
      if (!deadline.is_zero() && wait + nominal > deadline) {
        const std::uint64_t n = req.data.num_samples();
        ++result.expired_requests;
        result.expired_samples += n;
        ++shard.result.expired_requests;
        shard.monitor.record_admission(td, n, 0, n, 0);
        fleet_monitor.record_admission(td, n, 0, n, 0);
        obs::RequestTrace rt;
        rt.begin(req.id, req.arrival);
        rt.samples = n;
        append_wait_spans(rt, req.arrival, free_before, td);
        rt.outcome = obs::RequestOutcome::kExpired;
        rt.tier = static_cast<std::uint8_t>(tier);
        rt.finalize(td);
        record_energy(shard, tenant_index, rt);
        finish_request(std::move(rt), obs::ExemplarReason::kExpired);
      } else {
        live.push_back(std::move(req));
      }
    }
    if (live.empty()) {
      shard.free_at = std::max(shard.free_at, td);
      shard.result.t_end = std::max(shard.result.t_end, td);
      return;
    }

    std::uint64_t n_total = 0;
    for (const FleetRequest& req : live) {
      n_total += req.data.num_samples();
    }
    tensor::MatrixF inputs(static_cast<std::size_t>(n_total), spec.features);
    {
      std::size_t row = 0;
      for (const FleetRequest& req : live) {
        for (std::size_t j = 0; j < req.data.num_samples(); ++j, ++row) {
          const auto src = req.data.features.row(j);
          std::copy(src.begin(), src.end(), inputs.row(row).begin());
        }
      }
    }

    // The oldest member has the least remaining budget; it bounds the whole
    // batch's per-sample retry watchdog.
    const SimDuration budget =
        deadline.is_zero() ? SimDuration() : deadline - (td - live.front().arrival);

    SimDuration swap_upload;
    std::vector<std::uint32_t> predictions;
    ResilienceReport report;
    SimDuration service_total;
    if (tier == ServeTier::kHost) {
      // Quarantined (or probing-denied) shard: the tenant's float model on
      // the CPU; the device clock, SRAM and fault schedule sit idle.
      auto [res, time] =
          cpu.run(tenant.model.float_model, inputs, tpu::ExecutionMode::kFunctional);
      HDC_CHECK(res.has_classes, "inference model must end in ARG_MAX");
      predictions.assign(res.classes.begin(), res.classes.end());
      report.cpu_fallback_time = time;
      report.cpu_samples = n_total;
      service_total = time;
    } else {
      // Sync the device clock forward to the dispatch: idle gaps are real
      // simulated time the detach schedule sees.
      if (shard.device.clock() < td) {
        shard.device.advance_clock(td - shard.device.clock());
      }
      // The tenant swap is a *charged* weight upload (unlike single-device
      // serving's uncharged deploys): multi-tenancy pays for cache misses,
      // which is exactly what cache-aware placement amortizes.
      const tpu::ExecutionStats swap_stats = shard.device.load(tenant.model.compiled);
      swap_upload = swap_stats.weight_upload;
      ++shard.result.cache_lookups;
      if (swap_upload.is_zero()) {
        ++shard.result.cache_hits;
      } else {
        ++shard.result.swaps;
        shard.result.swap_time += swap_upload;
        shard.device.advance_clock(swap_upload);
      }

      RetryPolicy policy = config.retry;
      policy.sample_deadline = budget;
      ResilientExecutor executor(&shard.device, cpu, policy);
      tpu::InvokeOptions options;
      options.mode = tpu::ExecutionMode::kFunctional;
      // Batched fleets stream the whole micro-batch through the pipelined
      // (double-buffered) path, amortizing the per-invoke USB overhead;
      // unbatched fleets keep single-device serving's interactive invoke.
      options.interactive = fleet.batch_max_chunks == 1;
      options.pipelined = fleet.batch_max_chunks > 1;
      ResilientExecutor::Outcome run = executor.run(
          tenant.model.compiled, tenant.model.float_model, inputs, options, nullptr);
      HDC_CHECK(run.result.has_classes, "inference model must end in ARG_MAX");
      predictions.assign(run.result.classes.begin(), run.result.classes.end());
      report = run.report;
      service_total = report.total();
    }

    const SimDuration service_start = td + swap_upload;
    const SimDuration end = service_start + service_total;
    const SimDuration per_sample =
        service_total * (1.0 / static_cast<double>(n_total));
    const bool faulty = report.circuit_opened || report.cpu_samples > 0 ||
                        report.device_stats.invoke_retries > 0;

    if (tier != ServeTier::kHost) {
      shard.health.on_batch(end, faulty, report.circuit_opened);
    }

    if (!shard.monitor.monitor.has_value()) {
      shard.monitor.init(monitor_config(swap_upload + service_total,
                                        (swap_upload + service_total) *
                                            (1.0 / static_cast<double>(n_total))));
    }
    if (!fleet_monitor.monitor.has_value()) {
      const obs::MonitorConfig mc =
          monitor_config(swap_upload + service_total,
                         (swap_upload + service_total) *
                             (1.0 / static_cast<double>(n_total)));
      fleet_monitor.init(mc);
      init_model_stats(mc.window);
      obs::EnergyConfig ec = config.energy;
      ec.window = mc.window;
      fleet_energy.emplace(ec);
      for (const obs::EnergyAccountant::Request& req : pending_energy) {
        fleet_energy->record(req);
      }
      pending_energy.clear();
    }
    shard.monitor.monitor->set_quarantined(
        shard.health.state() == DeviceHealth::kQuarantined, end);

    // ---- per-member accounting: traces, monitor samples, predictions ----
    std::size_t g = 0;
    for (const FleetRequest& req : live) {
      const std::uint64_t n = req.data.num_samples();
      obs::RequestTrace rt;
      rt.begin(req.id, req.arrival);
      rt.samples = n;
      append_wait_spans(rt, req.arrival, free_before, td);
      if (!swap_upload.is_zero()) {
        rt.append(obs::Stage::kSwap, swap_upload);
      }
      append_service_spans(rt, report);
      rt.outcome = obs::RequestOutcome::kServed;
      rt.tier = static_cast<std::uint8_t>(tier);
      rt.faulty = faulty;
      rt.finalize(end);

      const SimDuration member_latency_base = (td - req.arrival) + swap_upload;
      std::uint64_t member_correct = 0;
      preds[req.id].reserve(static_cast<std::size_t>(n));
      for (std::size_t j = 0; j < n; ++j, ++g) {
        const std::uint32_t predicted = predictions[g];
        const std::uint32_t label = req.data.labels[j];
        const std::vector<float> encoded =
            tenant.scorer.encode(req.data.features.row(j));
        const core::OnlineLearner::Decision decision =
            tenant.scorer.decide_encoded(encoded);
        obs::ServingMonitor::Sample sample;
        sample.at = service_start + per_sample * static_cast<double>(g + 1);
        sample.latency = member_latency_base + per_sample;
        sample.request_id = static_cast<std::int64_t>(req.id);
        sample.predicted = predicted;
        sample.correct = predicted == label;
        sample.margin = decision.margin();
        log_clock = sample.at.to_seconds();
        shard.monitor.monitor->record(sample);
        fleet_monitor.monitor->record(sample);

        // Served samples only, into both the aggregate and this tenant's
        // instance; dimensions go to the tenant alone (its own encoder).
        obs::ModelQualityStats::Sample msample;
        msample.at = sample.at;
        msample.predicted = predicted;
        msample.label = label;
        msample.top1 = static_cast<double>(decision.top1);
        msample.request_id = static_cast<std::int64_t>(req.id);
        fleet_stats->record(msample);
        obs::ModelQualityStats& tstats = *tenant_stats[tenant_index];
        tstats.record(msample);
        tstats.record_dimensions(sample.at, label, encoded);

        member_correct += predicted == label ? 1 : 0;
        preds[req.id].push_back(predicted);
      }
      correct_total += member_correct;
      result.samples_served += n;
      ++result.served_requests;
      ++shard.result.requests_served;
      shard.result.samples_served += n;
      if (tier != ServeTier::kFull) {
        ++shard.result.degraded_requests;
        result.degraded_samples += n;
      }

      shard.monitor.monitor->record_attribution(end, rt.attribution);
      fleet_monitor.monitor->record_attribution(end, rt.attribution);

      std::optional<obs::ExemplarReason> reason;
      if (tier != ServeTier::kFull || report.cpu_samples > 0) {
        reason = obs::ExemplarReason::kTierFallback;
      } else if (member_latency_base + per_sample >=
                 shard.monitor.monitor->latency_quantile(end, 0.99)) {
        reason = obs::ExemplarReason::kTailLatency;
      }
      record_energy(shard, tenant_index, rt);
      finish_request(std::move(rt), reason);
    }

    log_clock = end.to_seconds();
    shard.monitor.monitor->record_transport(end, n_total, report.cpu_samples,
                                            report.device_stats.invoke_retries);
    fleet_monitor.monitor->record_transport(end, n_total, report.cpu_samples,
                                            report.device_stats.invoke_retries);
    const std::uint64_t degraded = tier != ServeTier::kFull ? n_total : 0;
    shard.monitor.record_admission(end, n_total, 0, 0, degraded);
    fleet_monitor.record_admission(end, n_total, 0, 0, degraded);

    ++shard.result.batches;
    shard.result.busy += end - td;
    shard.free_at = end;
    shard.result.t_end = end;
  };

  // ---- event loop: arrivals and dispatches in global time order ------------
  // Arrivals win ties so a chunk landing exactly at a shard's dispatch time
  // still joins that batch (same convention as the single-device loop, where
  // an arrival at the service start is admitted first).
  while (true) {
    Shard* ready = nullptr;
    SimDuration ready_at;
    for (const auto& shard : shards) {
      if (shard->queue.empty()) {
        continue;
      }
      const SimDuration at = dispatch_at(*shard);
      if (ready == nullptr || at < ready_at) {
        ready = shard.get();
        ready_at = at;
      }
    }
    const bool arrivals_left = next_arrival < total_offered;
    if (!arrivals_left && ready == nullptr) {
      break;
    }
    const SimDuration arrival = arrival_period * static_cast<double>(next_arrival);
    if (!arrivals_left || (ready != nullptr && ready_at < arrival)) {
      dispatch(*ready, ready_at);
      continue;
    }

    // ---- one arrival: draw the tenant, place, maybe shed -------------------
    const std::uint32_t tenant = draw_tenant();
    data::Dataset chunk = tenants[tenant].stream.next_chunk();
    const std::uint64_t id = next_arrival++;
    const std::uint64_t n = chunk.num_samples();
    ++result.offered_requests;
    result.offered_samples += n;
    log_clock = arrival.to_seconds();

    Shard& shard = place(id, tenant);
    if (shard.queue.size() >= config.admission.queue_capacity) {
      if (config.admission.policy == ShedPolicy::kRejectNewest) {
        ++result.shed_requests;
        result.shed_samples += n;
        ++shard.result.shed_requests;
        shard.monitor.record_admission(arrival, n, n, 0, 0);
        fleet_monitor.record_admission(arrival, n, n, 0, 0);
        obs::RequestTrace rt;
        rt.begin(id, arrival);
        rt.samples = n;
        rt.outcome = obs::RequestOutcome::kShed;
        rt.finalize(arrival);  // refused on arrival: zero latency
        record_energy(shard, tenant, rt);
        finish_request(std::move(rt), obs::ExemplarReason::kShed);
        continue;
      }
      // kDropOldest: the stalest request queued on this shard makes room.
      FleetRequest dropped = std::move(shard.queue.front());
      shard.queue.pop_front();
      const std::uint64_t dn = dropped.data.num_samples();
      shard.queued_samples -= dn;
      ++result.shed_requests;
      result.shed_samples += dn;
      ++shard.result.shed_requests;
      shard.monitor.record_admission(arrival, dn, dn, 0, 0);
      fleet_monitor.record_admission(arrival, dn, dn, 0, 0);
      obs::RequestTrace rt;
      rt.begin(dropped.id, dropped.arrival);
      rt.samples = dn;
      rt.outcome = obs::RequestOutcome::kShed;
      if (arrival > dropped.arrival) {
        rt.append(obs::Stage::kQueueWait, arrival - dropped.arrival);
      }
      rt.finalize(arrival);
      record_energy(shard, dropped.tenant, rt);
      finish_request(std::move(rt), obs::ExemplarReason::kShed);
    }
    shard.queued_samples += n;
    shard.queue.push_back(FleetRequest{id, tenant, arrival, std::move(chunk)});
  }

  // ---- finalize ------------------------------------------------------------
  const auto degenerate_config = [&]() {
    obs::MonitorConfig mc = config.monitor;
    mc.num_classes = spec.classes;
    if (mc.window.span.is_zero()) {
      mc.window.span = SimDuration::millis(1);
    }
    if (mc.window.buckets == 0) {
      mc.window.buckets = 16;
    }
    if (mc.slo_latency.is_zero()) {
      mc.slo_latency = SimDuration::micros(100);
    }
    return mc;
  };
  if (!fleet_monitor.monitor.has_value()) {
    fleet_monitor.init(degenerate_config());
  }
  if (!fleet_stats.has_value()) {
    init_model_stats(degenerate_config().window);
  }
  if (!fleet_energy.has_value()) {
    obs::EnergyConfig ec = config.energy;
    ec.window = degenerate_config().window;
    fleet_energy.emplace(ec);
    for (const obs::EnergyAccountant::Request& req : pending_energy) {
      fleet_energy->record(req);
    }
    pending_energy.clear();
  }

  SimDuration t_end;
  for (const auto& shard : shards) {
    t_end = std::max(t_end, shard->result.t_end);
  }
  result.t_end = t_end;

  for (auto& shard : shards) {
    if (!shard->monitor.monitor.has_value()) {
      shard->monitor.init(degenerate_config());
    }
    shard->result.final_health = shard->health.state();
    shard->result.quarantines = shard->health.quarantines();
    shard->result.probes = shard->health.probes_attempted();
    shard->result.final_snapshot = shard->monitor.monitor->snapshot(t_end);
    result.batches += shard->result.batches;
    result.cache_lookups += shard->result.cache_lookups;
    result.cache_hits += shard->result.cache_hits;
    result.swaps += shard->result.swaps;
    result.shards.push_back(std::move(shard->result));
  }
  HDC_CHECK(result.cache_hits + result.swaps == result.cache_lookups,
            "cache telemetry must balance: hits + swaps == lookups");
  HDC_CHECK(result.offered_requests ==
                result.served_requests + result.shed_requests + result.expired_requests,
            "request conservation violated: offered != served + shed + expired");
  HDC_CHECK(result.offered_samples == result.samples_served + result.shed_samples +
                                          result.expired_samples,
            "sample conservation violated: offered != served + shed + expired");

  result.cache_hit_rate =
      result.cache_lookups == 0
          ? 0.0
          : static_cast<double>(result.cache_hits) /
                static_cast<double>(result.cache_lookups);
  result.mean_batch_chunks =
      result.batches == 0 ? 0.0
                          : static_cast<double>(result.served_requests) /
                                static_cast<double>(result.batches);
  result.lifetime_accuracy =
      result.samples_served == 0
          ? 0.0
          : static_cast<double>(correct_total) /
                static_cast<double>(result.samples_served);

  result.fleet_snapshot = fleet_monitor.monitor->snapshot(t_end);
  result.events = fleet_monitor.monitor->events();

  result.fleet_model = fleet_stats->snapshot(t_end);
  result.model_events = fleet_stats->events();
  result.tenant_models.reserve(fleet.num_tenants);
  std::uint64_t tenant_sample_sum = 0;
  for (std::uint32_t t = 0; t < fleet.num_tenants; ++t) {
    result.tenant_models.push_back(tenant_stats[t]->snapshot(t_end));
    tenant_sample_sum += result.tenant_models.back().samples_total;
  }
  HDC_CHECK(result.fleet_model.samples_total == result.samples_served,
            "model-quality conservation violated: aggregate samples != served");
  HDC_CHECK(tenant_sample_sum == result.samples_served,
            "model-quality conservation violated: tenant samples don't sum to served");

  result.fleet_energy = fleet_energy->snapshot(t_end);
  result.energy_events = fleet_energy->events();
  result.tenant_energy_pj = std::move(tenant_energy);
  std::int64_t shard_energy_sum = 0;
  for (const FleetShardResult& shard : result.shards) {
    shard_energy_sum += shard.energy_pj;
  }
  std::int64_t tenant_energy_sum = 0;
  for (const std::int64_t pj : result.tenant_energy_pj) {
    tenant_energy_sum += pj;
  }
  HDC_CHECK(shard_energy_sum == result.fleet_energy.total_pj,
            "energy conservation violated: shard ledgers don't sum to fleet total");
  HDC_CHECK(tenant_energy_sum == result.fleet_energy.total_pj,
            "energy conservation violated: tenant ledgers don't sum to fleet total");

  // The fleet snapshot's `model` object is the aggregate with the per-tenant
  // views spliced in as a `tenants` array (the aggregate to_json always ends
  // in '}'); gates and Prometheus carry the aggregate only.
  {
    std::string model_json = result.fleet_model.to_json();
    model_json.pop_back();
    model_json += ",\"tenants\":[";
    for (std::uint32_t t = 0; t < fleet.num_tenants; ++t) {
      if (t > 0) {
        model_json += ',';
      }
      model_json += "{\"tenant\":";
      model_json += std::to_string(t);
      model_json += ",\"model\":";
      model_json += result.tenant_models[t].to_json();
      model_json += '}';
    }
    model_json += "]}";
    result.fleet_snapshot.model_json = std::move(model_json);
    result.fleet_snapshot.model_metrics_json = result.fleet_model.metrics_json();
    result.fleet_snapshot.model_prometheus = result.fleet_model.to_prometheus();
  }

  // Same splice shape for energy: the aggregate ledger with the per-tenant
  // picojoule totals appended as a `tenants` array.
  {
    std::string energy_json = result.fleet_energy.to_json();
    energy_json.pop_back();
    energy_json += ",\"tenants\":[";
    for (std::uint32_t t = 0; t < fleet.num_tenants; ++t) {
      if (t > 0) {
        energy_json += ',';
      }
      energy_json += "{\"tenant\":";
      energy_json += std::to_string(t);
      energy_json += ",\"total_pj\":";
      energy_json += std::to_string(result.tenant_energy_pj[t]);
      energy_json += '}';
    }
    energy_json += "]}";
    result.fleet_snapshot.energy_json = std::move(energy_json);
    result.fleet_snapshot.energy_metrics_json = result.fleet_energy.metrics_json();
    result.fleet_snapshot.energy_prometheus = result.fleet_energy.to_prometheus();
  }

  result.predictions.reserve(static_cast<std::size_t>(result.samples_served));
  for (const auto& chunk_preds : preds) {
    result.predictions.insert(result.predictions.end(), chunk_preds.begin(),
                              chunk_preds.end());
  }
  result.requests = std::move(traces);
  result.exemplar_records.assign(exemplar_store.exemplars().begin(),
                                 exemplar_store.exemplars().end());

  if (!config.snapshot_dir.empty()) {
    std::filesystem::create_directories(config.snapshot_dir);
    write_text_file(
        (std::filesystem::path(config.snapshot_dir) / "fleet_snapshot_final.json")
            .string(),
        result.fleet_snapshot.to_json());
    for (const FleetShardResult& shard : result.shards) {
      write_text_file(shard_snapshot_path(config.snapshot_dir, shard.device_index),
                      shard.final_snapshot.to_json());
    }
  }
  std::string exemplar_path = config.exemplar_path;
  if (exemplar_path.empty() && !config.snapshot_dir.empty()) {
    exemplar_path =
        (std::filesystem::path(config.snapshot_dir) / "exemplars.jsonl").string();
  }
  if (!exemplar_path.empty()) {
    write_text_file(exemplar_path, exemplar_store.to_jsonl());
  }

  log_clock = t_end.to_seconds();
  HDC_LOG_INFO << "serve_fleet: " << result.samples_served << " samples over "
               << result.t_end.to_string() << " simulated on " << fleet.num_devices
               << " devices / " << fleet.num_tenants << " tenants ("
               << placement_name(fleet.placement) << "), " << result.batches
               << " batches (mean " << result.mean_batch_chunks
               << " chunks), cache hit rate " << result.cache_hit_rate
               << ", lifetime accuracy " << result.lifetime_accuracy << ", shed "
               << result.shed_requests << " / expired " << result.expired_requests
               << " requests, energy " << result.fleet_energy.total_joules() << " J";
  return result;
}

}  // namespace hdc::runtime
