#include "runtime/framework.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "lite/builder.hpp"
#include "lite/quantize.hpp"
#include "nn/wide_nn.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"

namespace hdc::runtime {
namespace {

double measured_update_fraction(const std::vector<core::EpochStats>& history,
                                std::uint64_t samples) {
  if (history.empty() || samples == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& epoch : history) {
    total += static_cast<double>(epoch.updates) / static_cast<double>(samples);
  }
  return total / static_cast<double>(history.size());
}

}  // namespace

CoDesignFramework::CoDesignFramework(SystemConfig config)
    : config_(std::move(config)),
      cost_(config_.host, config_.systolic, config_.link, config_.sram_bytes) {
  config_.host.validate();
  HDC_CHECK(config_.calibration_samples > 0, "calibration needs at least one sample");
}

void CoDesignFramework::publish_train_metrics(const TrainTimings& timings) const {
  if (trace_ == nullptr) {
    return;
  }
  if (obs::MetricsRegistry* metrics = trace_->metrics()) {
    metrics->gauge("train.encode_s").set(timings.encode.to_seconds());
    metrics->gauge("train.update_s").set(timings.update.to_seconds());
    metrics->gauge("train.model_gen_s").set(timings.model_gen.to_seconds());
    metrics->gauge("train.total_s").set(timings.total().to_seconds());
  }
}

void CoDesignFramework::publish_infer_metrics(const InferTimings& timings,
                                              double accuracy,
                                              std::size_t samples) const {
  if (trace_ == nullptr) {
    return;
  }
  if (obs::MetricsRegistry* metrics = trace_->metrics()) {
    metrics->counter("infer.samples").add(samples);
    metrics->gauge("infer.total_s").set(timings.total.to_seconds());
    metrics->gauge("infer.per_sample_s").set(timings.per_sample.to_seconds());
    metrics->gauge("infer.accuracy").set(accuracy);
  }
}

tensor::MatrixF CoDesignFramework::representative_rows(const data::Dataset& dataset) const {
  const std::size_t n =
      std::min<std::size_t>(config_.calibration_samples, dataset.num_samples());
  tensor::MatrixF rows(n, dataset.num_features());
  std::copy_n(dataset.features.data(), n * dataset.num_features(), rows.data());
  return rows;
}

tensor::MatrixF CoDesignFramework::encode_on_tpu(const core::Encoder& encoder,
                                                 const tensor::MatrixF& samples,
                                                 const tensor::MatrixF& representative,
                                                 SimDuration* encode_time,
                                                 SimDuration* model_gen_time) const {
  // Lower the encode half of the wide NN, quantize it against representative
  // inputs, compile for the accelerator, and stream the samples through.
  const nn::Graph graph = nn::build_encode_graph(encoder);
  const lite::LiteModel float_model = lite::build_float_model(graph);
  const lite::LiteModel quantized =
      lite::quantize_model(float_model, representative, config_.quantize);

  const tpu::EdgeTpuCompiler compiler(config_.systolic, config_.sram_bytes);
  const tpu::CompiledModel compiled = compiler.compile(quantized);

  tpu::EdgeTpuDevice device(config_.systolic, config_.link, config_.sram_bytes);
  device.set_trace(trace_);
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kFunctional;
  options.interactive = false;  // training encodes are streamed
  const SimDuration encode_start = trace_ != nullptr ? trace_->now() : SimDuration();
  auto [result, stats] =
      device.invoke(compiled, samples, options, config_.host.host_cost_model());

  if (encode_time != nullptr) {
    // Host-side dequantization of the received int8 hypervectors.
    const SimDuration dequant = SimDuration::seconds(
        static_cast<double>(samples.rows()) * encoder.dim() / config_.host.element_rate);
    *encode_time += stats.total() + dequant;
    if (trace_ != nullptr) {
      trace_->span(obs::Track::kHost, "host.dequantize", dequant,
                   {{"samples", samples.rows()}, {"dim", encoder.dim()}});
      // Envelope over the device/link/host spans the invoke emitted.
      trace_->span_at(obs::Track::kTrainer, "train.encode", encode_start,
                      trace_->now() - encode_start, {{"samples", samples.rows()}});
    }
  }
  if (model_gen_time != nullptr) {
    *model_gen_time += compiled.report.host_compile_time;
    if (trace_ != nullptr) {
      trace_->span(obs::Track::kTrainer, "train.model_gen",
                   compiled.report.host_compile_time, {{"model", "encode"}});
    }
  }
  return std::move(result.values);
}

CoDesignFramework::TrainOutcome CoDesignFramework::train_cpu(
    const data::Dataset& train, const core::HdConfig& cfg,
    const data::Dataset* validation) const {
  train.validate();
  cfg.validate();

  core::Encoder encoder(static_cast<std::uint32_t>(train.num_features()), cfg.dim, cfg.seed);
  const core::Trainer trainer(cfg);
  core::TrainResult result = trainer.fit(encoder, train, validation);

  TrainOutcome outcome{core::TrainedClassifier{std::move(encoder), std::move(result.model)},
                       {}, std::move(result.history), 0.0};
  outcome.measured_update_fraction =
      measured_update_fraction(outcome.history, train.num_samples());

  outcome.timings.encode = cost_.encode_cpu(train.num_samples(),
                                            static_cast<std::uint32_t>(train.num_features()),
                                            cfg.dim, config_.host);
  outcome.timings.update =
      cost_.update_phase(train.num_samples(), cfg.dim, train.num_classes, cfg.epochs,
                         outcome.measured_update_fraction, config_.host);
  if (trace_ != nullptr) {
    trace_->span(obs::Track::kTrainer, "train.encode", outcome.timings.encode,
                 {{"samples", train.num_samples()}, {"where", "cpu"}});
    trace_->span(obs::Track::kTrainer, "train.update", outcome.timings.update,
                 {{"epochs", cfg.epochs}});
  }
  publish_train_metrics(outcome.timings);
  return outcome;
}

CoDesignFramework::TrainOutcome CoDesignFramework::train_tpu(
    const data::Dataset& train, const core::HdConfig& cfg,
    const data::Dataset* validation) const {
  train.validate();
  cfg.validate();

  core::Encoder encoder(static_cast<std::uint32_t>(train.num_features()), cfg.dim, cfg.seed);
  const tensor::MatrixF representative = representative_rows(train);

  TrainTimings timings;
  const tensor::MatrixF encoded = encode_on_tpu(encoder, train.features, representative,
                                                &timings.encode, &timings.model_gen);

  const core::Trainer trainer(cfg);
  core::TrainResult result = [&] {
    if (validation != nullptr) {
      // Validation encodes through the same quantized path (not charged to
      // training time — it is experiment instrumentation).
      const tensor::MatrixF val_encoded =
          encode_on_tpu(encoder, validation->features, representative, nullptr, nullptr);
      return trainer.fit_encoded(encoded, train.labels, train.num_classes, &val_encoded,
                                 &validation->labels);
    }
    return trainer.fit_encoded(encoded, train.labels, train.num_classes);
  }();

  TrainOutcome outcome{core::TrainedClassifier{std::move(encoder), std::move(result.model)},
                       timings, std::move(result.history), 0.0};
  outcome.measured_update_fraction =
      measured_update_fraction(outcome.history, train.num_samples());
  outcome.timings.update =
      cost_.update_phase(train.num_samples(), cfg.dim, train.num_classes, cfg.epochs,
                         outcome.measured_update_fraction, config_.host);
  if (trace_ != nullptr) {
    trace_->span(obs::Track::kTrainer, "train.update", outcome.timings.update,
                 {{"epochs", cfg.epochs},
                  {"update_fraction", outcome.measured_update_fraction}});
  }

  // The deployable inference model is generated (and compiled) once at the
  // end of training; the paper books this under training model-gen cost.
  const tpu::EdgeTpuCompiler compiler(config_.systolic, config_.sram_bytes);
  const auto infer_shape = compiler.compile(make_int8_chain_model(
      "infer_gen", static_cast<std::uint32_t>(train.num_features()), cfg.dim,
      train.num_classes));
  outcome.timings.model_gen += infer_shape.report.host_compile_time;
  if (trace_ != nullptr) {
    trace_->span(obs::Track::kTrainer, "train.model_gen",
                 infer_shape.report.host_compile_time, {{"model", "infer"}});
  }
  publish_train_metrics(outcome.timings);
  return outcome;
}

CoDesignFramework::TrainOutcome CoDesignFramework::train_tpu_bagging(
    const data::Dataset& train, const core::BaggingConfig& cfg) const {
  train.validate();
  cfg.validate();

  const std::uint32_t sub_dim = cfg.effective_sub_dim();
  const auto num_samples = static_cast<std::uint32_t>(train.num_samples());
  const auto num_features = static_cast<std::uint32_t>(train.num_features());
  const tensor::MatrixF representative = representative_rows(train);

  core::HdConfig sub_config = cfg.base;
  sub_config.dim = sub_dim;
  sub_config.epochs = cfg.epochs;

  Rng rng(cfg.base.seed);
  core::BaggedEnsemble ensemble;
  TrainTimings timings;
  double update_fraction_sum = 0.0;
  std::vector<core::EpochStats> first_history;

  for (std::uint32_t m = 0; m < cfg.num_models; ++m) {
    Rng member_rng = rng.split();
    const auto bootstrap =
        data::draw_bootstrap(num_samples, num_features, cfg.bootstrap, member_rng);

    core::Encoder encoder(num_features, sub_dim, member_rng.next_u64());
    encoder.apply_feature_mask(bootstrap.feature_mask);

    const data::Dataset subset = train.select(bootstrap.sample_indices);
    const tensor::MatrixF encoded = encode_on_tpu(encoder, subset.features, representative,
                                                  &timings.encode, &timings.model_gen);

    const core::Trainer trainer(sub_config);
    core::TrainResult result =
        trainer.fit_encoded(encoded, subset.labels, subset.num_classes);

    const SimDuration member_update =
        cost_.update_phase(subset.num_samples(), sub_dim, subset.num_classes, cfg.epochs,
                           measured_update_fraction(result.history, subset.num_samples()),
                           config_.host);
    timings.update += member_update;
    if (trace_ != nullptr) {
      trace_->span(obs::Track::kTrainer, "train.update", member_update,
                   {{"member", m}, {"epochs", cfg.epochs}});
    }
    update_fraction_sum +=
        measured_update_fraction(result.history, subset.num_samples());
    if (m == 0) {
      first_history = result.history;
    }
    ensemble.members.push_back(
        core::SubModel{std::move(encoder), std::move(result.model), bootstrap});
  }

  core::StackedModel stacked = core::stack(ensemble);

  // One stacked full-width inference model is generated at the end.
  const tpu::EdgeTpuCompiler compiler(config_.systolic, config_.sram_bytes);
  const auto stacked_shape = compiler.compile(make_int8_chain_model(
      "infer_stacked_gen", num_features, sub_dim * cfg.num_models, train.num_classes));
  timings.model_gen += stacked_shape.report.host_compile_time;
  if (trace_ != nullptr) {
    trace_->span(obs::Track::kTrainer, "train.model_gen",
                 stacked_shape.report.host_compile_time,
                 {{"model", "infer_stacked"}, {"members", cfg.num_models}});
  }

  TrainOutcome outcome{
      core::TrainedClassifier{std::move(stacked.encoder), std::move(stacked.model)},
      timings, std::move(first_history),
      update_fraction_sum / static_cast<double>(cfg.num_models)};
  publish_train_metrics(outcome.timings);
  return outcome;
}

CoDesignFramework::InferOutcome CoDesignFramework::infer_cpu(
    const core::TrainedClassifier& classifier, const data::Dataset& test) const {
  test.validate();
  const nn::Graph graph = nn::build_inference_graph(classifier);
  const lite::LiteModel model = lite::build_float_model(graph);

  const platform::CpuExecutor executor(config_.host);
  auto [result, total] =
      executor.run(model, test.features, tpu::ExecutionMode::kFunctional, trace_);
  HDC_CHECK(result.has_classes, "inference model must end in ARG_MAX");

  InferOutcome outcome;
  outcome.predictions.assign(result.classes.begin(), result.classes.end());
  outcome.accuracy = data::accuracy(outcome.predictions, test.labels);
  outcome.timings.total = total;
  outcome.timings.per_sample = total * (1.0 / static_cast<double>(test.num_samples()));
  publish_infer_metrics(outcome.timings, outcome.accuracy, test.num_samples());
  return outcome;
}

CoDesignFramework::InferOutcome CoDesignFramework::infer_tpu(
    const core::TrainedClassifier& classifier, const data::Dataset& test,
    const data::Dataset& representative) const {
  test.validate();
  const nn::Graph graph = nn::build_inference_graph(classifier);
  const lite::LiteModel float_model = lite::build_float_model(graph);
  const lite::LiteModel quantized = lite::quantize_model(
      float_model, representative_rows(representative), config_.quantize);

  const tpu::EdgeTpuCompiler compiler(config_.systolic, config_.sram_bytes);
  const tpu::CompiledModel compiled = compiler.compile(quantized);

  tpu::EdgeTpuDevice device(config_.systolic, config_.link, config_.sram_bytes);
  device.set_trace(trace_);
  device.load(compiled);  // one-time, excluded from steady-state timing
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kFunctional;
  options.interactive = true;
  const SimDuration infer_start = trace_ != nullptr ? trace_->now() : SimDuration();
  auto [result, stats] =
      device.invoke(compiled, test.features, options, config_.host.host_cost_model());
  HDC_CHECK(result.has_classes, "inference model must end in ARG_MAX");

  InferOutcome outcome;
  outcome.predictions.assign(result.classes.begin(), result.classes.end());
  outcome.accuracy = data::accuracy(outcome.predictions, test.labels);
  outcome.timings.total =
      stats.device_compute + stats.host_compute + stats.transfer;  // weights resident
  outcome.timings.per_sample =
      outcome.timings.total * (1.0 / static_cast<double>(test.num_samples()));
  outcome.compile_report = compiled.report;
  if (trace_ != nullptr) {
    // Envelope over the invoke's transfer/device/host spans.
    trace_->span_at(obs::Track::kExecutor, "infer.tpu", infer_start,
                    trace_->now() - infer_start,
                    {{"samples", test.num_samples()}, {"accuracy", outcome.accuracy}});
  }
  publish_infer_metrics(outcome.timings, outcome.accuracy, test.num_samples());
  return outcome;
}

CoDesignFramework::LoweredModel CoDesignFramework::lower_classifier(
    const core::TrainedClassifier& classifier, const data::Dataset& representative,
    const std::string& name) const {
  const nn::Graph graph = nn::build_inference_graph(classifier, name);
  lite::LiteModel float_model = lite::build_float_model(graph);
  const lite::LiteModel quantized = lite::quantize_model(
      float_model, representative_rows(representative), config_.quantize);
  const tpu::EdgeTpuCompiler compiler(config_.systolic, config_.sram_bytes);
  tpu::CompiledModel compiled = compiler.compile(quantized);
  return LoweredModel{std::move(float_model), std::move(compiled)};
}

ServingEndpoint::ServingEndpoint(const CoDesignFramework& framework,
                                 const tpu::FaultProfile& faults, RetryPolicy policy)
    : framework_(framework),
      policy_(policy),
      device_(framework.config().systolic, framework.config().link,
              framework.config().sram_bytes),
      cpu_(framework.config().host) {
  faults.validate();
  policy_.validate();
  device_.set_trace(framework.trace_context());
  device_.set_fault_injector(tpu::FaultInjector(faults));
}

void ServingEndpoint::deploy(ServeTier tier, const core::TrainedClassifier& classifier,
                             const data::Dataset& representative) {
  HDC_CHECK(tier != ServeTier::kHost,
            "the host tier shares the reduced tier's model; deploy kReduced instead");
  const char* name = tier == ServeTier::kFull ? "serve_full" : "serve_reduced";
  CoDesignFramework::LoweredModel lowered =
      framework_.lower_classifier(classifier, representative, name);
  // Upload rides the one-time-load convention (uncharged, like infer_tpu's).
  device_.load(lowered.compiled);
  tiers_[static_cast<std::size_t>(tier)] = std::move(lowered);
}

bool ServingEndpoint::deployed(ServeTier tier) const noexcept {
  const std::size_t slot = tier == ServeTier::kFull ? 0 : 1;
  return tiers_[slot].has_value();
}

ServingEndpoint::BatchOutcome ServingEndpoint::infer(ServeTier tier,
                                                     const tensor::MatrixF& inputs,
                                                     SimDuration start,
                                                     SimDuration sample_deadline,
                                                     obs::RequestTrace* request) {
  const std::size_t slot = tier == ServeTier::kFull ? 0 : 1;
  HDC_CHECK(tiers_[slot].has_value(), "serving tier has no deployed model");
  const CoDesignFramework::LoweredModel& model = *tiers_[slot];

  if (request != nullptr) {
    // Service spans start at the admission decision, after any queue wait.
    request->cursor = start;
  }
  BatchOutcome outcome;
  if (tier == ServeTier::kHost) {
    // Host tier: the reduced float model on the CPU. The device is not
    // touched — its clock, SRAM and detach schedule sit idle until a probe.
    auto [result, time] = cpu_.run(model.float_model, inputs, tpu::ExecutionMode::kFunctional,
                                   framework_.trace_context());
    HDC_CHECK(result.has_classes, "inference model must end in ARG_MAX");
    outcome.predictions.assign(result.classes.begin(), result.classes.end());
    if (request != nullptr) {
      request->append(obs::Stage::kHost, time);
    }
    outcome.report.cpu_fallback_time = time;
    outcome.report.cpu_samples = inputs.rows();
    outcome.total = time;
    return outcome;
  }

  // Sync the device clock forward to the service start: idle gaps between
  // chunks are real simulated time the detach/reattach schedule sees.
  if (device_.clock() < start) {
    device_.advance_clock(start - device_.clock());
  }
  // Residency tracks the active tier; swaps are uncharged by the deploy
  // convention (the result of load is discarded). The upload span is
  // recorded outside the request scope with the cursor pinned: an uncharged
  // swap is endpoint state management, not part of this request's causal
  // chain, and advancing the cursor would misplace the charged spans that
  // follow (a resumed session redoes the swap a warm one already did).
  if (obs::TraceContext* trace = framework_.trace_context()) {
    const std::int64_t active = trace->active_request();
    const SimDuration cursor = trace->now();
    trace->end_request();
    device_.load(model.compiled);
    trace->set_now(cursor);
    if (active >= 0) {
      trace->begin_request(static_cast<std::uint64_t>(active));
    }
  } else {
    device_.load(model.compiled);
  }

  RetryPolicy policy = policy_;
  policy.sample_deadline = sample_deadline;
  ResilientExecutor executor(&device_, cpu_, policy);
  executor.set_trace(framework_.trace_context());
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kFunctional;
  options.interactive = true;
  ResilientExecutor::Outcome run = executor.run(model.compiled, model.float_model, inputs,
                                                options, request);
  HDC_CHECK(run.result.has_classes, "inference model must end in ARG_MAX");
  outcome.predictions.assign(run.result.classes.begin(), run.result.classes.end());
  outcome.report = run.report;
  outcome.total = run.report.total();
  return outcome;
}

SimDuration ServingEndpoint::nominal_per_sample(ServeTier tier) const {
  const std::size_t slot = tier == ServeTier::kFull ? 0 : 1;
  HDC_CHECK(tiers_[slot].has_value(), "serving tier has no deployed model");
  const CoDesignFramework::LoweredModel& model = *tiers_[slot];
  if (tier == ServeTier::kHost) {
    return cpu_.per_sample_time(model.float_model);
  }
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kFunctional;
  options.interactive = true;
  return device_
      .per_sample_cost(model.compiled, options, framework_.config().host.host_cost_model())
      .total();
}

CoDesignFramework::InferOutcome CoDesignFramework::infer_tpu_resilient(
    const core::TrainedClassifier& classifier, const data::Dataset& test,
    const data::Dataset& representative, const tpu::FaultProfile& faults,
    const RetryPolicy& policy, ResilienceReport* report) const {
  test.validate();
  faults.validate();
  const nn::Graph graph = nn::build_inference_graph(classifier);
  const lite::LiteModel float_model = lite::build_float_model(graph);
  const lite::LiteModel quantized = lite::quantize_model(
      float_model, representative_rows(representative), config_.quantize);

  const tpu::EdgeTpuCompiler compiler(config_.systolic, config_.sram_bytes);
  const tpu::CompiledModel compiled = compiler.compile(quantized);

  tpu::EdgeTpuDevice device(config_.systolic, config_.link, config_.sram_bytes);
  device.set_trace(trace_);
  device.load(compiled);  // one-time clean upload, excluded like infer_tpu's
  device.set_fault_injector(tpu::FaultInjector(faults));

  ResilientExecutor executor(&device, platform::CpuExecutor(config_.host), policy);
  executor.set_trace(trace_);
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kFunctional;
  options.interactive = true;
  const SimDuration infer_start = trace_ != nullptr ? trace_->now() : SimDuration();
  // The CPU fallback runs the float model — the exact model `infer_cpu`
  // executes, so fallback predictions match the all-CPU path sample for
  // sample.
  ResilientExecutor::Outcome outcome =
      executor.run(compiled, float_model, test.features, options);
  HDC_CHECK(outcome.result.has_classes, "inference model must end in ARG_MAX");

  InferOutcome infer;
  infer.predictions.assign(outcome.result.classes.begin(), outcome.result.classes.end());
  infer.accuracy = data::accuracy(infer.predictions, test.labels);
  // Steady-state weights are resident before the run, so device_stats'
  // weight_upload is purely fault-induced re-upload traffic and is charged.
  infer.timings.total = outcome.report.total();
  infer.timings.per_sample =
      infer.timings.total * (1.0 / static_cast<double>(test.num_samples()));
  infer.compile_report = compiled.report;
  if (trace_ != nullptr) {
    trace_->span_at(obs::Track::kExecutor, "infer.tpu_resilient", infer_start,
                    trace_->now() - infer_start,
                    {{"samples", test.num_samples()},
                     {"tpu_samples", outcome.report.tpu_samples},
                     {"cpu_samples", outcome.report.cpu_samples},
                     {"accuracy", infer.accuracy}});
  }
  publish_infer_metrics(infer.timings, infer.accuracy, test.num_samples());
  if (report != nullptr) {
    *report = outcome.report;
  }
  return infer;
}

}  // namespace hdc::runtime
