#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "lite/model.hpp"
#include "platform/profiles.hpp"
#include "runtime/report.hpp"
#include "tpu/device.hpp"

namespace hdc::runtime {

/// Shape of a learning workload — everything the analytic timing model needs
/// to price paper-scale experiments without materializing the math.
struct WorkloadShape {
  std::string name;
  std::uint64_t train_samples = 0;
  std::uint64_t test_samples = 0;
  std::uint32_t features = 0;
  std::uint32_t classes = 0;
  std::uint32_t dim = 10000;
  std::uint32_t epochs = 20;
  /// Average fraction of training samples that trigger a class-hypervector
  /// update per iteration. Measured functional runs report theirs; 0.25 is a
  /// representative default for analytic full-scale pricing.
  double update_fraction = 0.25;

  void validate() const;
};

/// Bagging operating point (paper defaults: M=4, d'=2500, I'=6, alpha=0.6,
/// beta disabled).
struct BaggingShape {
  std::uint32_t num_models = 4;
  std::uint32_t sub_dim = 2500;
  std::uint32_t epochs = 6;
  double alpha = 0.6;
  double beta = 1.0;

  void validate() const;
};

/// Builds a weight-shape-faithful int8 HDLite model (zero-filled parameters,
/// nominal quantization) for cost evaluation and compiler tests:
/// input(float n) -> QUANTIZE -> FC(n x d) -> TANH [-> FC(d x k) -> ARG_MAX].
lite::LiteModel make_int8_chain_model(const std::string& name, std::uint32_t features,
                                      std::uint32_t dim,
                                      std::optional<std::uint32_t> classes = std::nullopt);

/// Analytic pricing of the three framework settings on arbitrary platforms.
/// All TPU paths share the EdgeTpuDevice cost machinery with the functional
/// simulator, so analytic and measured timings cannot diverge.
class CostModel {
 public:
  explicit CostModel(platform::PlatformProfile host = platform::host_cpu_profile(),
                     tpu::SystolicConfig systolic = {}, tpu::UsbLinkConfig link = {},
                     std::uint64_t sram_bytes = 8ULL * 1024 * 1024);

  const platform::PlatformProfile& host() const noexcept { return host_; }

  // ---- CPU-only baseline (paper setting "CPU") on a given CPU profile ----
  TrainTimings train_cpu(const WorkloadShape& shape,
                         const platform::PlatformProfile& cpu) const;
  InferTimings infer_cpu(const WorkloadShape& shape,
                         const platform::PlatformProfile& cpu) const;

  // ---- Co-design without bagging (paper setting "TPU") ----
  TrainTimings train_tpu(const WorkloadShape& shape) const;
  InferTimings infer_tpu(const WorkloadShape& shape) const;

  // ---- Co-design with bagging (paper setting "TPU_B") ----
  TrainTimings train_tpu_bagging(const WorkloadShape& shape, const BaggingShape& bag) const;
  /// Stacked single inference model — identical steady-state shape/cost to
  /// infer_tpu (the paper's "free of extra overhead" claim).
  InferTimings infer_tpu_stacked(const WorkloadShape& shape, const BaggingShape& bag) const;
  /// Ablation: running the M sub-models serially per sample, paying a model
  /// swap (weight re-upload) for each — the overhead the stacking avoids.
  InferTimings infer_tpu_serial(const WorkloadShape& shape, const BaggingShape& bag) const;
  /// Ablation: serial sub-models pinned together on-chip via co-compilation
  /// (no swaps, but still M invocations + host aggregation per sample).
  /// Falls back to swap pricing when the combined parameters exceed SRAM.
  InferTimings infer_tpu_serial_coresident(const WorkloadShape& shape,
                                           const BaggingShape& bag) const;

  // ---- Encoding phase only (Fig. 10 feature sweep) ----
  SimDuration encode_cpu(std::uint64_t samples, std::uint32_t features, std::uint32_t dim,
                         const platform::PlatformProfile& cpu) const;
  SimDuration encode_tpu(std::uint64_t samples, std::uint32_t features,
                         std::uint32_t dim) const;

  /// CPU-side class-hypervector update cost for one training run.
  SimDuration update_phase(std::uint64_t samples, std::uint32_t dim, std::uint32_t classes,
                           std::uint32_t epochs, double update_fraction,
                           const platform::PlatformProfile& cpu) const;

 private:
  platform::PlatformProfile host_;
  tpu::SystolicConfig systolic_;
  tpu::UsbLinkConfig link_;
  std::uint64_t sram_bytes_;
};

}  // namespace hdc::runtime
