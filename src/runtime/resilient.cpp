#include "runtime/resilient.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"
#include "tpu/faults.hpp"

namespace hdc::runtime {
namespace {

/// Copies one invoke's stage durations into a request's causal chain. The
/// per-invoke `retry_backoff` is always zero here (backoff is charged — and
/// appended — by the retry loop itself), but is forwarded defensively.
void append_stats_spans(obs::RequestTrace& request, const tpu::ExecutionStats& stats,
                        std::uint32_t sample, std::uint32_t attempt) {
  using obs::Stage;
  if (!stats.retry_backoff.is_zero()) {
    request.append(Stage::kBackoff, stats.retry_backoff, sample, attempt);
  }
  if (!stats.pipelined_makespan.is_zero()) {
    // Overlapped streaming: the per-stage fields double-count overlapped
    // work, so attribute the makespan (compute-bound by construction) to the
    // device stage and only the serial weight upload to transfer.
    if (!stats.weight_upload.is_zero()) {
      request.append(Stage::kTransfer, stats.weight_upload, sample, attempt);
    }
    request.append(Stage::kDevice, stats.pipelined_makespan, sample, attempt);
    return;
  }
  if (!stats.transfer.is_zero()) {
    request.append(Stage::kTransfer, stats.transfer, sample, attempt);
  }
  if (!stats.weight_upload.is_zero()) {
    request.append(Stage::kTransfer, stats.weight_upload, sample, attempt);
  }
  if (!stats.device_compute.is_zero()) {
    request.append(Stage::kDevice, stats.device_compute, sample, attempt);
  }
  if (!stats.host_compute.is_zero()) {
    request.append(Stage::kDeviceHost, stats.host_compute, sample, attempt);
  }
}

}  // namespace

void RetryPolicy::validate() const {
  HDC_CHECK(max_attempts >= 1, "at least one device attempt per sample is required");
  HDC_CHECK(initial_backoff >= SimDuration(), "backoff must be non-negative");
  HDC_CHECK(backoff_multiplier >= 1.0, "backoff must not shrink across retries");
  HDC_CHECK(max_backoff >= initial_backoff,
            "backoff ceiling must be at least the initial backoff");
  HDC_CHECK(circuit_breaker_threshold >= 1, "circuit breaker threshold must be positive");
  HDC_CHECK(sample_deadline >= SimDuration(),
            "per-sample deadline must be non-negative (0 disables the watchdog)");
}

ResilienceReport& ResilienceReport::operator+=(const ResilienceReport& other) {
  device_stats += other.device_stats;
  cpu_fallback_time += other.cpu_fallback_time;
  tpu_samples += other.tpu_samples;
  cpu_samples += other.cpu_samples;
  shed_samples += other.shed_samples;
  expired_samples += other.expired_samples;
  degraded_samples += other.degraded_samples;
  circuit_opened = circuit_opened || other.circuit_opened;
  return *this;
}

ResilientExecutor::ResilientExecutor(tpu::EdgeTpuDevice* device, platform::CpuExecutor cpu,
                                     RetryPolicy policy)
    : device_(device), cpu_(std::move(cpu)), policy_(policy) {
  HDC_CHECK(device_ != nullptr, "resilient executor needs a device");
  policy_.validate();
}

ResilientExecutor::Outcome ResilientExecutor::run(const tpu::CompiledModel& compiled,
                                                  const lite::LiteModel& cpu_fallback,
                                                  const tensor::MatrixF& inputs,
                                                  const tpu::InvokeOptions& options,
                                                  obs::RequestTrace* request) {
  const std::size_t num_samples = inputs.rows();
  HDC_CHECK(num_samples > 0, "resilient run over zero samples");
  const tpu::HostCostModel host = cpu_.profile().host_cost_model();

  Outcome outcome;

  tpu::FaultInjector* faults = device_->fault_injector();
  if (faults == nullptr || !faults->enabled()) {
    // Fault-free fast path: the unmodified batch invoke, bit-identical to
    // calling the device directly (the tested "fault-free profile ⇒ clean
    // path" invariant).
    auto [result, stats] = device_->invoke(compiled, inputs, options, host);
    outcome.result = std::move(result);
    outcome.report.device_stats = stats;
    outcome.report.tpu_samples = num_samples;
    if (request != nullptr) {
      append_stats_spans(*request, stats, 0, 0);
    }
    return outcome;
  }

  const bool functional = options.mode == tpu::ExecutionMode::kFunctional;
  std::vector<float> values;
  std::vector<std::int32_t> classes;
  std::size_t out_width = 0;
  bool has_classes = false;
  bool width_known = false;

  const auto append_rows = [&](const lite::InferenceResult& part) {
    if (!functional) {
      return;
    }
    if (!width_known) {
      out_width = part.values.cols();
      has_classes = part.has_classes;
      width_known = true;
    }
    HDC_CHECK(part.values.cols() == out_width && part.has_classes == has_classes,
              "device model and CPU fallback model disagree on output shape");
    values.insert(values.end(), part.values.storage().begin(), part.values.storage().end());
    classes.insert(classes.end(), part.classes.begin(), part.classes.end());
  };

  const auto run_on_cpu = [&](std::size_t begin, std::size_t count) {
    tensor::MatrixF rows(count, inputs.cols());
    std::copy_n(inputs.row(begin).data(), count * inputs.cols(), rows.data());
    auto [result, time] = cpu_.run(cpu_fallback, rows, options.mode, trace_);
    append_rows(result);
    if (request != nullptr) {
      request->append(obs::Stage::kHost, time, static_cast<std::uint32_t>(begin), 0);
    }
    outcome.report.cpu_fallback_time += time;
    outcome.report.cpu_samples += count;
    outcome.report.device_stats.fallback_samples += count;
    if (trace_ != nullptr) {
      trace_->instant(obs::Track::kExecutor, "resilient.cpu_fallback",
                      {{"first_sample", begin}, {"samples", count}});
      if (obs::MetricsRegistry* metrics = trace_->metrics()) {
        metrics->counter("resilient.fallback_samples").add(count);
      }
    }
  };

  std::uint32_t consecutive_failures = 0;
  std::size_t row = 0;
  for (; row < num_samples; ++row) {
    tensor::MatrixF one(1, inputs.cols());
    std::copy_n(inputs.row(row).data(), inputs.cols(), one.data());

    bool done = false;
    SimDuration sample_spent;  // device time + backoff this sample consumed
    SimDuration backoff = policy_.initial_backoff;
    for (std::uint32_t attempt = 0; attempt < policy_.max_attempts && !done; ++attempt) {
      if (attempt > 0) {
        if (!policy_.sample_deadline.is_zero() &&
            sample_spent + backoff > policy_.sample_deadline) {
          // Deadline watchdog: the remaining budget cannot cover another
          // backoff sleep, so the sample abandons the device mid-retry
          // without charging the sleep and completes on the CPU instead.
          outcome.report.device_stats.deadline_abandons += 1;
          outcome.report.expired_samples += 1;
          if (trace_ != nullptr) {
            trace_->instant(obs::Track::kExecutor, "resilient.deadline_abandon",
                            {{"sample", row}, {"attempt", attempt}});
            if (obs::MetricsRegistry* metrics = trace_->metrics()) {
              metrics->counter("resilient.deadline_abandons").add(1);
            }
          }
          break;
        }
        // Exponential backoff between attempts, charged in simulated time so
        // a reattaching device can actually come back within the window.
        outcome.report.device_stats.invoke_retries += 1;
        outcome.report.device_stats.retry_backoff += backoff;
        device_->advance_clock(backoff);
        if (request != nullptr) {
          request->append(obs::Stage::kBackoff, backoff,
                          static_cast<std::uint32_t>(row), attempt);
        }
        if (trace_ != nullptr) {
          trace_->instant(obs::Track::kExecutor, "resilient.retry",
                          {{"sample", row}, {"attempt", attempt}});
          trace_->span(obs::Track::kExecutor, "resilient.backoff", backoff,
                       {{"sample", row}, {"attempt", attempt}});
          if (obs::MetricsRegistry* metrics = trace_->metrics()) {
            metrics->counter("resilient.invoke_retries").add(1);
            metrics->histogram("resilient.backoff").observe(backoff);
          }
        }
        sample_spent += backoff;
        backoff = std::min(backoff * policy_.backoff_multiplier, policy_.max_backoff);
      }
      try {
        auto [result, stats] = device_->invoke(compiled, one, options, host);
        outcome.report.device_stats += stats;
        if (request != nullptr) {
          append_stats_spans(*request, stats, static_cast<std::uint32_t>(row), attempt);
        }
        append_rows(result);
        outcome.report.tpu_samples += 1;
        consecutive_failures = 0;
        done = true;
      } catch (const tpu::DeviceFault& fault) {
        outcome.report.device_stats += fault.charged_stats();
        if (request != nullptr) {
          append_stats_spans(*request, fault.charged_stats(),
                             static_cast<std::uint32_t>(row), attempt);
        }
        sample_spent += fault.charged_stats().total();
        ++consecutive_failures;
        if (trace_ != nullptr) {
          trace_->instant(obs::Track::kExecutor, "resilient.device_fault",
                          {{"sample", row},
                           {"kind", tpu::fault_kind_name(fault.kind())},
                           {"consecutive_failures", consecutive_failures}});
          if (obs::MetricsRegistry* metrics = trace_->metrics()) {
            metrics->counter("resilient.device_faults").add(1);
          }
        }
        if (consecutive_failures >= policy_.circuit_breaker_threshold) {
          break;
        }
      }
    }
    if (done) {
      continue;
    }
    if (consecutive_failures >= policy_.circuit_breaker_threshold) {
      outcome.report.circuit_opened = true;
      if (trace_ != nullptr) {
        trace_->instant(obs::Track::kExecutor, "resilient.circuit_open",
                        {{"sample", row},
                         {"threshold", policy_.circuit_breaker_threshold}});
        if (obs::MetricsRegistry* metrics = trace_->metrics()) {
          metrics->counter("resilient.circuit_opened").add(1);
        }
      }
      break;
    }
    // This sample exhausted its device attempts; run it alone on the CPU and
    // keep trying the device for the rest of the batch.
    run_on_cpu(row, 1);
  }

  if (outcome.report.circuit_opened && row < num_samples) {
    // Circuit open: the device is considered gone — the remaining samples
    // (including the one that tripped it) finish on the host in one batch.
    run_on_cpu(row, num_samples - row);
  }

  if (functional) {
    outcome.result.values = tensor::MatrixF(num_samples, out_width, std::move(values));
    outcome.result.classes = std::move(classes);
    outcome.result.has_classes = has_classes;
  }
  return outcome;
}

}  // namespace hdc::runtime
