#pragma once

#include <cstdint>

#include "lite/interpreter.hpp"
#include "platform/cpu_executor.hpp"
#include "tpu/compiler.hpp"
#include "tpu/device.hpp"

namespace hdc::obs {
class TraceContext;
struct RequestTrace;
}  // namespace hdc::obs

namespace hdc::runtime {

/// How the resilient executor reacts to device faults. Backoff is charged in
/// *simulated* time (it advances the device clock, so detach/reattach
/// windows are honoured) and grows geometrically per retry of one sample.
struct RetryPolicy {
  /// Device attempts per sample before that sample falls back to the CPU.
  std::uint32_t max_attempts = 3;
  SimDuration initial_backoff = SimDuration::micros(200);
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff sleep. Without it, high `max_attempts`
  /// with multiplier > 1 charges geometrically absurd simulated waits.
  SimDuration max_backoff = SimDuration::millis(50);
  /// Consecutive failed device attempts (across samples) after which the
  /// circuit opens and every remaining sample routes to the CPU in bulk.
  std::uint32_t circuit_breaker_threshold = 5;
  /// Per-sample simulated-time budget for the retry loop. Before charging a
  /// backoff sleep, the executor checks whether the sample's spent time plus
  /// that sleep would exhaust the budget; if so the watchdog abandons the
  /// device (no further backoff is charged) and the sample completes on the
  /// CPU immediately. Zero = unbounded (the legacy behaviour). Only the
  /// faulty path consults it — the fault-free batch fast path is untouched.
  SimDuration sample_deadline;

  void validate() const;
};

/// What a resilient batch cost and where its samples actually ran. The
/// shed/expired/degraded counters are filled by the serving layers above the
/// executor (admission queue, degradation ladder); the executor itself only
/// sets `expired_samples` for watchdog-abandoned retry sequences. The
/// report forms a monoid under `operator+=`, so per-chunk reports fold into
/// session totals.
struct ResilienceReport {
  tpu::ExecutionStats device_stats;  ///< all device-side work incl. failed attempts
  SimDuration cpu_fallback_time;     ///< host time for samples the CPU completed
  std::uint64_t tpu_samples = 0;
  std::uint64_t cpu_samples = 0;
  std::uint64_t shed_samples = 0;      ///< dropped by admission control, never served
  std::uint64_t expired_samples = 0;   ///< deadline exhausted (queue wait or watchdog)
  std::uint64_t degraded_samples = 0;  ///< served on a degraded ladder tier
  bool circuit_opened = false;

  SimDuration total() const { return device_stats.total() + cpu_fallback_time; }

  ResilienceReport& operator+=(const ResilienceReport& other);
};

/// Fault-tolerant invoke path: drives the (fault-injectable) Edge TPU device
/// sample by sample with bounded retry and exponential backoff, re-uploads
/// parameters after SRAM corruption (the device evicts them; the next
/// attempt's upload is charged automatically), and degrades to the host
/// `CpuExecutor` — per sample after exhausted retries, or wholesale once the
/// circuit breaker trips. Completed TPU results are always kept, so every
/// batch finishes with a full-length, correct prediction vector.
///
/// With no injector attached (or a fault-free profile) the executor takes
/// the unmodified batch path: stats and outputs are bit-identical to calling
/// `EdgeTpuDevice::invoke` directly.
class ResilientExecutor {
 public:
  ResilientExecutor(tpu::EdgeTpuDevice* device, platform::CpuExecutor cpu,
                    RetryPolicy policy = {});

  const RetryPolicy& policy() const noexcept { return policy_; }

  /// Attaches a span/metrics recorder shared with the device: retries,
  /// backoff sleeps, fallback batches and circuit-breaker trips appear as
  /// `resilient.*` spans/instants on the executor track. Null disables.
  void set_trace(obs::TraceContext* trace) noexcept { trace_ = trace; }

  struct Outcome {
    lite::InferenceResult result;  ///< full batch (TPU rows + CPU fallback rows)
    ResilienceReport report;
  };

  /// Runs `inputs` through `compiled` on the device; samples the device
  /// cannot complete run through `cpu_fallback` (the float model the all-CPU
  /// path executes, so fallback predictions match that path exactly).
  ///
  /// When `request` is non-null, every stage the batch passes through —
  /// transfer, MXU compute, per-attempt retry backoff, CPU fallback — is
  /// appended to the request's causal chain (purely observational: the chain
  /// copies durations the cost models already charged, so attaching it never
  /// changes results or timings).
  Outcome run(const tpu::CompiledModel& compiled, const lite::LiteModel& cpu_fallback,
              const tensor::MatrixF& inputs, const tpu::InvokeOptions& options,
              obs::RequestTrace* request = nullptr);

 private:
  tpu::EdgeTpuDevice* device_;
  platform::CpuExecutor cpu_;
  RetryPolicy policy_;
  obs::TraceContext* trace_ = nullptr;
};

}  // namespace hdc::runtime
