#include "runtime/serve.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/byte_io.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/serialize.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace hdc::runtime {

namespace {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HDC_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  HDC_CHECK(out.good(), "failed writing '" + path + "'");
}

std::string snapshot_path(const std::string& dir, std::uint32_t index) {
  char name[48];
  std::snprintf(name, sizeof(name), "monitor_snapshot_%04u.json", index);
  return (std::filesystem::path(dir) / name).string();
}

/// Feeds the serving loop's simulated clock to the structured log for the
/// lifetime of the session, so JSONL records (alarm edges in particular)
/// carry `t_s` in simulated seconds.
class LogClockScope {
 public:
  explicit LogClockScope(const double* clock) {
    log::set_time_provider([clock] { return *clock; });
  }
  ~LogClockScope() { log::set_time_provider(nullptr); }
  LogClockScope(const LogClockScope&) = delete;
  LogClockScope& operator=(const LogClockScope&) = delete;
};

/// A chunk admitted to the serving queue but not yet served.
struct PendingChunk {
  std::uint32_t index = 0;  ///< offered-chunk index
  SimDuration arrival;
  data::Dataset data;
};

/// A monitor admission record buffered until the (lazily sized) monitor
/// exists; replayed in order at construction.
struct AdmissionRecord {
  SimDuration at;
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t degraded = 0;
};

// ---- serve checkpoint ("HDSV") ---------------------------------------------
//
// magic + version + config fingerprint + progress + both learners + health
// state machine + fault-injector RNG + pending queue (indices only; chunk
// data is re-derived by deterministic stream replay) + result accumulators +
// the serving monitor's exact state, closed by a CRC32 trailer. The monitor
// is observational (result-invariant), but its windows/EWMAs/alarm edges are
// part of the run's *telemetry* contract: serializing it makes a resumed
// run's alarm lines, snapshots, and per-chunk monitor-derived fields
// (windowed accuracy, drift score) byte-identical to the uninterrupted
// run's. Exemplar span chains and raw request records stay cold on resume —
// they are bounded debugging artifacts, not accumulators, and re-warm
// deterministically.

constexpr std::uint32_t kServeMagic = 0x56534448;  // "HDSV" little-endian
// v2: appended the per-request latency-attribution accumulators (stage sums
// + requests_traced) after `checkpoints_written`.
// v3: per-chunk windowed_accuracy/drift_score joined ChunkStats, and the
// full serving-monitor state (windows, EWMAs, alarms, event history,
// quarantine gate, lifetime totals) is appended after `requests_traced`.
// v4: the config fingerprint gained the stream's label-swap drift pair,
// alarm events carry a `detail` string on the wire, and the model-quality
// monitor (obs/model_stats.hpp: confusion/calibration/dimension state) is
// appended after the serving monitor.
// v5: the energy accountant (obs/energy.hpp: integer-picojoule ledgers,
// joules-per-inference window, watts EWMA, energy_budget alarm state) is
// appended after the model-quality monitor, with the same u8 presence flag.
constexpr std::uint32_t kServeVersion = 5;

/// Everything a resumed session restores before re-entering the loop.
struct RestoredState {
  std::uint32_t next_arrival = 0;
  SimDuration now;
  double warmup_accuracy = 0.0;
  std::uint32_t served_count = 0;
  std::optional<core::OnlineLearner> full;
  std::optional<core::OnlineLearner> reduced;
  /// The classifiers actually deployed on the endpoint (frozen at the last
  /// refresh — generally *behind* the live learners).
  std::optional<core::TrainedClassifier> deployed_full;
  std::optional<core::TrainedClassifier> deployed_reduced;
  std::optional<DeviceHealthTracker> health;
  Rng::State rng{};
  std::vector<std::pair<std::uint32_t, SimDuration>> queue;  ///< (index, arrival)

  std::vector<std::uint32_t> predictions;
  std::vector<ServeResult::ChunkStats> chunks;
  std::array<ServeResult::TierStats, 3> tiers{};
  std::uint64_t shed_samples = 0;
  std::uint64_t expired_samples = 0;
  std::uint64_t degraded_samples = 0;
  std::uint32_t shed_chunks = 0;
  std::uint32_t expired_chunks = 0;
  std::uint64_t correct_total = 0;
  std::uint64_t samples_served = 0;
  std::uint32_t snapshots_written = 0;
  std::uint32_t checkpoints_written = 0;
  obs::RequestAttribution attribution_total;
  std::uint64_t requests_traced = 0;
  /// The serving monitor exactly as it was at checkpoint time (absent when
  /// the interrupted run never served a chunk, so no monitor existed yet).
  std::optional<obs::ServingMonitor> monitor;
  /// Model-quality monitor state (same lazy lifecycle as `monitor`).
  std::optional<obs::ModelQualityStats> model_stats;
  /// Energy accountant state (same lazy lifecycle as `monitor`).
  std::optional<obs::EnergyAccountant> energy;
};

void write_fingerprint(ByteWriter& w, const ServeConfig& config) {
  const data::SyntheticSpec& spec = config.stream.spec;
  w.write<std::uint32_t>(spec.features);
  w.write<std::uint32_t>(spec.classes);
  w.write<std::uint32_t>(spec.samples);
  w.write<std::uint32_t>(spec.latent_dim);
  w.write<std::uint64_t>(spec.seed);
  w.write<float>(spec.class_separation);
  w.write<float>(spec.noise_sigma);
  w.write<float>(spec.warp_strength);
  w.write<std::uint32_t>(config.stream.chunk_size);
  w.write<std::uint32_t>(config.stream.drift_start_chunk);
  w.write<std::uint32_t>(config.stream.drift_duration_chunks);
  w.write<std::uint32_t>(config.stream.drift_swap_a);
  w.write<std::uint32_t>(config.stream.drift_swap_b);
  w.write<std::uint32_t>(config.learner.dim);
  w.write<std::uint64_t>(config.learner.seed);
  w.write<float>(config.learner.learning_rate);
  w.write<std::uint8_t>(static_cast<std::uint8_t>(config.learner.similarity));
  w.write<std::uint32_t>(config.learner.error_window);
  w.write<std::uint32_t>(config.warmup_chunks);
  w.write<std::uint32_t>(config.serve_chunks);
  w.write<std::uint8_t>(config.online_updates ? 1 : 0);
  w.write<std::uint32_t>(config.model_refresh_chunks);
  w.write<std::uint32_t>(config.effective_reduced_dim());
  w.write<double>(config.admission.offered_load);
  w.write<std::uint32_t>(config.admission.queue_capacity);
  w.write<std::uint8_t>(static_cast<std::uint8_t>(config.admission.policy));
  w.write<double>(config.admission.deadline.to_seconds());
  w.write<std::uint32_t>(config.admission.degrade_backlog);
  w.write<std::uint32_t>(config.health.degrade_after_faults);
  w.write<std::uint32_t>(config.health.quarantine_after_faults);
  w.write<std::uint32_t>(config.health.recover_after_successes);
  w.write<double>(config.health.probe_interval.to_seconds());
  w.write<std::uint32_t>(config.health.probe_successes);
}

template <typename T>
void check_fingerprint_field(T got, T expected, const char* field) {
  HDC_CHECK(got == expected,
            std::string("checkpoint does not match this serving config: '") + field +
                "' was " + std::to_string(got) + " when the checkpoint was written but "
                "is " + std::to_string(expected) + " now; resume with the original "
                "stream/learner/admission configuration");
}

/// Traverses the fingerprint. Strict mode (config != nullptr) matches every
/// field against the resuming config; relaxed mode (nullptr, used by
/// `checkpoint_model_stats_json`) reads and discards — every field is a
/// fixed-size scalar, so the traversal needs no configuration.
void read_fingerprint(ByteReader& r, const ServeConfig* maybe_config) {
  const ServeConfig defaults;
  const ServeConfig& config = maybe_config != nullptr ? *maybe_config : defaults;
  const bool strict = maybe_config != nullptr;
  const auto field = [&](auto expected, const char* name) {
    const auto got = r.read<decltype(expected)>();
    if (strict) {
      check_fingerprint_field(got, expected, name);
    }
  };
  const data::SyntheticSpec& spec = config.stream.spec;
  field(spec.features, "features");
  field(spec.classes, "classes");
  field(spec.samples, "samples");
  field(spec.latent_dim, "latent_dim");
  field(spec.seed, "stream seed");
  field(spec.class_separation, "class_separation");
  field(spec.noise_sigma, "noise_sigma");
  field(spec.warp_strength, "warp_strength");
  field(config.stream.chunk_size, "chunk_size");
  field(config.stream.drift_start_chunk, "drift_start_chunk");
  field(config.stream.drift_duration_chunks, "drift_duration_chunks");
  field(config.stream.drift_swap_a, "drift_swap_a");
  field(config.stream.drift_swap_b, "drift_swap_b");
  field(config.learner.dim, "learner dim");
  field(config.learner.seed, "learner seed");
  field(config.learner.learning_rate, "learning_rate");
  field(static_cast<std::uint8_t>(config.learner.similarity), "similarity");
  field(config.learner.error_window, "error_window");
  field(config.warmup_chunks, "warmup_chunks");
  field(config.serve_chunks, "serve_chunks");
  field(static_cast<std::uint8_t>(config.online_updates ? 1 : 0), "online_updates");
  field(config.model_refresh_chunks, "model_refresh_chunks");
  field(config.effective_reduced_dim(), "reduced_dim");
  field(config.admission.offered_load, "offered_load");
  field(config.admission.queue_capacity, "queue_capacity");
  field(static_cast<std::uint8_t>(config.admission.policy), "shed policy");
  field(config.admission.deadline.to_seconds(), "deadline");
  field(config.admission.degrade_backlog, "degrade_backlog");
  field(config.health.degrade_after_faults, "degrade_after_faults");
  field(config.health.quarantine_after_faults, "quarantine_after_faults");
  field(config.health.recover_after_successes, "recover_after_successes");
  field(config.health.probe_interval.to_seconds(), "probe_interval");
  field(config.health.probe_successes, "probe_successes");
}

void write_chunk_stats(ByteWriter& w, const ServeResult::ChunkStats& c) {
  w.write<std::uint32_t>(c.index);
  w.write<double>(c.t_end.to_seconds());
  w.write<std::uint64_t>(c.samples);
  w.write<double>(c.chunk_accuracy);
  w.write<double>(c.windowed_accuracy);
  w.write<double>(c.drift_score);
  w.write<std::uint64_t>(c.fallback_samples);
  w.write<std::uint8_t>(c.circuit_opened ? 1 : 0);
  w.write<std::uint8_t>(static_cast<std::uint8_t>(c.tier));
  w.write<double>(c.queue_wait.to_seconds());
  w.write<std::uint8_t>(static_cast<std::uint8_t>(c.health));
}

ServeResult::ChunkStats read_chunk_stats(ByteReader& r) {
  ServeResult::ChunkStats c;
  c.index = r.read<std::uint32_t>();
  c.t_end = SimDuration::seconds(r.read<double>());
  c.samples = r.read<std::uint64_t>();
  c.chunk_accuracy = r.read<double>();
  c.windowed_accuracy = r.read<double>();
  c.drift_score = r.read<double>();
  c.fallback_samples = r.read<std::uint64_t>();
  c.circuit_opened = r.read<std::uint8_t>() != 0;
  const auto tier = r.read<std::uint8_t>();
  HDC_CHECK(tier <= static_cast<std::uint8_t>(ServeTier::kHost),
            "serialized serve tier out of range");
  c.tier = static_cast<ServeTier>(tier);
  c.queue_wait = SimDuration::seconds(r.read<double>());
  const auto health = r.read<std::uint8_t>();
  HDC_CHECK(health <= static_cast<std::uint8_t>(DeviceHealth::kProbing),
            "serialized device health out of range");
  c.health = static_cast<DeviceHealth>(health);
  return c;
}

/// Parses an HDSV checkpoint. Strict mode (config != nullptr, the resume
/// path) additionally matches the fingerprint and bounds queue/chunk counts
/// against the configuration; relaxed mode (nullptr) only verifies the
/// structural invariants (magic, version, CRC, exact payload traversal) —
/// enough for inspection tools that have no ServeConfig in hand.
RestoredState read_checkpoint(const std::string& path, const ServeConfig* config) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  HDC_CHECK(bytes.size() > sizeof(std::uint32_t) * 3,
            "serve checkpoint '" + path + "' is too small to be valid");
  const std::size_t payload_size = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_size, sizeof(stored_checksum));
  HDC_CHECK(crc32(bytes.data(), payload_size) == stored_checksum,
            "serve checkpoint '" + path + "' failed its checksum (corrupted or truncated)");

  ByteReader r(std::span<const std::uint8_t>(bytes.data(), payload_size));
  HDC_CHECK(r.read<std::uint32_t>() == kServeMagic,
            "'" + path + "' is not an HDSV serve checkpoint");
  HDC_CHECK(r.read<std::uint32_t>() == kServeVersion,
            "unsupported serve checkpoint version in '" + path + "'");
  read_fingerprint(r, config);

  RestoredState state;
  state.next_arrival = r.read<std::uint32_t>();
  state.now = SimDuration::seconds(r.read<double>());
  state.warmup_accuracy = r.read<double>();
  state.served_count = r.read<std::uint32_t>();
  state.full = core::OnlineLearner::deserialize(r);
  state.reduced = core::OnlineLearner::deserialize(r);
  state.deployed_full = core::deserialize_classifier(r.read_vector<std::uint8_t>());
  state.deployed_reduced = core::deserialize_classifier(r.read_vector<std::uint8_t>());
  state.health = DeviceHealthTracker::deserialize(
      r, config != nullptr ? config->health : HealthConfig{});
  for (auto& word : state.rng.s) {
    word = r.read<std::uint64_t>();
  }
  state.rng.has_spare_gaussian = r.read<std::uint8_t>() != 0;
  state.rng.spare_gaussian = r.read<float>();

  const auto queued = r.read<std::uint32_t>();
  HDC_CHECK(config == nullptr || queued <= config->admission.queue_capacity,
            "serve checkpoint queue exceeds the configured capacity");
  for (std::uint32_t i = 0; i < queued; ++i) {
    const auto index = r.read<std::uint32_t>();
    const SimDuration arrival = SimDuration::seconds(r.read<double>());
    HDC_CHECK(index < state.next_arrival, "serve checkpoint queue index out of range");
    state.queue.emplace_back(index, arrival);
  }

  state.predictions = r.read_vector<std::uint32_t>();
  const auto chunk_count = r.read<std::uint32_t>();
  HDC_CHECK(config == nullptr || chunk_count <= config->serve_chunks,
            "serve checkpoint has too many chunks");
  state.chunks.reserve(chunk_count);
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    state.chunks.push_back(read_chunk_stats(r));
  }
  for (auto& tier : state.tiers) {
    tier.samples = r.read<std::uint64_t>();
    tier.errors = r.read<std::uint64_t>();
    tier.service_time = SimDuration::seconds(r.read<double>());
  }
  state.shed_samples = r.read<std::uint64_t>();
  state.expired_samples = r.read<std::uint64_t>();
  state.degraded_samples = r.read<std::uint64_t>();
  state.shed_chunks = r.read<std::uint32_t>();
  state.expired_chunks = r.read<std::uint32_t>();
  state.correct_total = r.read<std::uint64_t>();
  state.samples_served = r.read<std::uint64_t>();
  state.snapshots_written = r.read<std::uint32_t>();
  state.checkpoints_written = r.read<std::uint32_t>();
  for (auto& stage : state.attribution_total.stages) {
    stage = SimDuration::seconds(r.read<double>());
  }
  state.requests_traced = r.read<std::uint64_t>();
  if (r.read<std::uint8_t>() != 0) {
    state.monitor = obs::ServingMonitor::deserialize(r);
  }
  if (r.read<std::uint8_t>() != 0) {
    state.model_stats = obs::ModelQualityStats::deserialize(r);
  }
  if (r.read<std::uint8_t>() != 0) {
    state.energy = obs::EnergyAccountant::deserialize(r);
  }
  HDC_CHECK(r.exhausted(), "trailing bytes after serve checkpoint payload");
  return state;
}

}  // namespace

const char* placement_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kCacheAware: return "cache-aware";
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastLoaded: return "least-loaded";
  }
  return "unknown";
}

PlacementPolicy parse_placement_policy(const std::string& name) {
  if (name == "cache-aware") return PlacementPolicy::kCacheAware;
  if (name == "round-robin") return PlacementPolicy::kRoundRobin;
  if (name == "least-loaded") return PlacementPolicy::kLeastLoaded;
  throw Error("unknown placement policy '" + name +
              "' (expected cache-aware, round-robin or least-loaded)");
}

void FleetConfig::validate() const {
  HDC_CHECK(num_devices >= 1, "a fleet needs at least one device");
  HDC_CHECK(num_tenants >= 1, "a fleet needs at least one tenant");
  HDC_CHECK(tenant_skew >= 0.0, "tenant_skew must be non-negative");
  HDC_CHECK(batch_max_chunks >= 1, "batch_max_chunks must be at least 1");
  HDC_CHECK(!(batch_max_age < SimDuration()), "batch_max_age must be non-negative");
}

std::uint32_t ServeConfig::effective_reduced_dim() const {
  return reduced_dim != 0 ? reduced_dim : std::max<std::uint32_t>(64, learner.dim / 8);
}

void ServeConfig::validate() const {
  stream.validate();
  HDC_CHECK(warmup_chunks >= 1,
            "serving needs at least one warmup chunk (it doubles as the "
            "quantization-calibration set)");
  HDC_CHECK(serve_chunks >= 1, "nothing to serve: serve_chunks must be positive");
  HDC_CHECK(learner.dim > 0, "learner dimension must be positive");
  faults.validate();
  retry.validate();
  admission.validate();
  health.validate();
  fleet.validate();
  HDC_CHECK(checkpoint_every_chunks == 0 || !checkpoint_path.empty(),
            "a checkpoint interval needs a checkpoint path to write to");
  // The monitor config is completed (num_classes, auto window/SLO) at serve
  // time and validated by the ServingMonitor constructor.
}

ServeResult serve(const CoDesignFramework& framework, const ServeConfig& config) {
  config.validate();
  const data::SyntheticSpec& spec = config.stream.spec;

  std::optional<RestoredState> restored;
  if (!config.resume_from.empty()) {
    restored = read_checkpoint(config.resume_from, &config);
  }
  const bool fresh = !restored.has_value();

  data::DriftStream stream(config.stream);
  core::OnlineConfig reduced_config = config.learner;
  reduced_config.dim = config.effective_reduced_dim();
  core::OnlineLearner learner(spec.features, spec.classes, config.learner);
  core::OnlineLearner reduced_learner(spec.features, spec.classes, reduced_config);

  // ---- warmup: train both ladder learners, keep chunk 0 as calibration ----
  // On resume the stream still replays the warmup chunks (its RNG must reach
  // the same position) but the learners come from the checkpoint instead.
  data::Dataset representative;
  double warmup_accuracy_sum = 0.0;
  for (std::uint32_t w = 0; w < config.warmup_chunks; ++w) {
    data::Dataset chunk = stream.next_chunk();
    if (fresh) {
      warmup_accuracy_sum += learner.learn_batch(chunk);
      reduced_learner.learn_batch(chunk);
    }
    if (w == 0) {
      representative = std::move(chunk);
    }
  }

  std::deque<PendingChunk> queue;
  std::uint32_t next_arrival = 0;
  if (restored.has_value()) {
    learner = std::move(*restored->full);
    reduced_learner = std::move(*restored->reduced);
    next_arrival = restored->next_arrival;
    // Replay the offered chunks the interrupted session already generated:
    // the stream is deterministic, so the queued chunks' data is re-derived
    // by index (shed/served chunks are consumed and discarded).
    std::map<std::uint32_t, SimDuration> queued;
    for (const auto& [index, arrival] : restored->queue) {
      queued.emplace(index, arrival);
    }
    for (std::uint32_t k = 0; k < next_arrival; ++k) {
      data::Dataset chunk = stream.next_chunk();
      const auto it = queued.find(k);
      if (it != queued.end()) {
        queue.push_back(PendingChunk{k, it->second, std::move(chunk)});
      }
    }
  }

  // The deployed classifiers lag the live learners between refreshes, so they
  // are checkpointed (and restored) separately — resuming with a fresh
  // `learner.freeze()` would serve a newer model than the uninterrupted run.
  core::TrainedClassifier deployed_full = restored.has_value()
                                              ? std::move(*restored->deployed_full)
                                              : learner.freeze();
  core::TrainedClassifier deployed_reduced = restored.has_value()
                                                 ? std::move(*restored->deployed_reduced)
                                                 : reduced_learner.freeze();

  ServingEndpoint endpoint(framework, config.faults, config.retry);
  endpoint.deploy(ServeTier::kFull, deployed_full, representative);
  endpoint.deploy(ServeTier::kReduced, deployed_reduced, representative);

  DeviceHealthTracker health = restored.has_value() ? std::move(*restored->health)
                                                    : DeviceHealthTracker(config.health);
  if (restored.has_value()) {
    tpu::FaultInjector* injector = endpoint.device().fault_injector();
    if (injector != nullptr) {
      injector->set_rng_state(restored->rng);
    }
  }

  ServeResult result;
  result.warmup_accuracy =
      fresh ? warmup_accuracy_sum / config.warmup_chunks : restored->warmup_accuracy;

  std::uint64_t correct_total = 0;
  std::uint64_t samples_served = 0;
  std::uint32_t served_count = 0;
  SimDuration now;
  if (restored.has_value()) {
    result.predictions = std::move(restored->predictions);
    result.chunks = std::move(restored->chunks);
    result.tiers = restored->tiers;
    result.shed_samples = restored->shed_samples;
    result.expired_samples = restored->expired_samples;
    result.degraded_samples = restored->degraded_samples;
    result.shed_chunks = restored->shed_chunks;
    result.expired_chunks = restored->expired_chunks;
    result.snapshots_written = restored->snapshots_written;
    result.checkpoints_written = restored->checkpoints_written;
    result.attribution_total = restored->attribution_total;
    result.requests_traced = restored->requests_traced;
    correct_total = restored->correct_total;
    samples_served = restored->samples_served;
    served_count = restored->served_count;
    now = restored->now;
  }

  if (!config.snapshot_dir.empty()) {
    std::filesystem::create_directories(config.snapshot_dir);
  }

  // Constructed after the first served chunk when the window span or the SLO
  // target is auto-sized (both derive from simulated chunk timings, so the
  // monitor stays deterministic). Admission events that happen earlier are
  // buffered and replayed in order at construction.
  std::optional<obs::ServingMonitor> monitor;
  std::optional<obs::ModelQualityStats> model_stats;
  std::optional<obs::EnergyAccountant> energy;
  std::vector<AdmissionRecord> pending_admission;
  std::vector<obs::EnergyAccountant::Request> pending_energy;
  if (restored.has_value() && restored->monitor.has_value()) {
    // Resume with the interrupted run's monitor exactly as checkpointed —
    // windows, EWMAs, alarm edge states, event history, quarantine gate —
    // so subsequent alarm lines and snapshots are byte-identical to the
    // uninterrupted run's. The lazy auto-sizing path below is skipped
    // because the monitor already exists.
    monitor.emplace(std::move(*restored->monitor));
  }
  if (restored.has_value() && restored->model_stats.has_value()) {
    model_stats.emplace(std::move(*restored->model_stats));
  }
  if (restored.has_value() && restored->energy.has_value()) {
    energy.emplace(std::move(*restored->energy));
  }

  double log_clock = now.to_seconds();
  LogClockScope log_scope(&log_clock);

  const bool open_loop = config.admission.offered_load > 0.0;
  SimDuration arrival_period;
  if (open_loop) {
    // Offered load is a multiple of the full-tier service rate: load L means
    // chunks arrive L times faster than the fault-free full model serves them.
    arrival_period =
        endpoint.nominal_per_sample(ServeTier::kFull) *
        (static_cast<double>(config.stream.chunk_size) / config.admission.offered_load);
  }

  const auto record_admission = [&](SimDuration at, std::uint64_t offered,
                                    std::uint64_t shed, std::uint64_t expired,
                                    std::uint64_t degraded) {
    if (monitor.has_value()) {
      log_clock = at.to_seconds();
      monitor->record_admission(at, offered, shed, expired, degraded);
    } else {
      pending_admission.push_back({at, offered, shed, expired, degraded});
    }
  };

  const auto sync_quarantine = [&](SimDuration at) {
    const bool quarantined = health.state() == DeviceHealth::kQuarantined;
    if (monitor.has_value()) {
      log_clock = at.to_seconds();
      monitor->set_quarantined(quarantined, at);
    }
    if (model_stats.has_value()) {
      log_clock = at.to_seconds();
      model_stats->set_quarantined(quarantined, at);
    }
    if (energy.has_value()) {
      log_clock = at.to_seconds();
      energy->set_quarantined(quarantined, at);
    }
  };

  /// Monitor snapshot with the model-quality section spliced in: the
  /// `model` object, the flat `model.*` gate entries and the `hdc_model_*`
  /// Prometheus families all ride inside the one hdc-monitor-v1 document.
  const auto take_snapshot = [&](SimDuration at) {
    obs::MonitorSnapshot snap = monitor->snapshot(at);
    if (model_stats.has_value()) {
      const obs::ModelStatsSnapshot ms = model_stats->snapshot(at);
      snap.model_json = ms.to_json();
      snap.model_metrics_json = ms.metrics_json();
      snap.model_prometheus = ms.to_prometheus();
    }
    if (energy.has_value()) {
      const obs::EnergySnapshot es = energy->snapshot(at);
      snap.energy_json = es.to_json();
      snap.energy_metrics_json = es.metrics_json();
      snap.energy_prometheus = es.to_prometheus();
    }
    return snap;
  };

  // ---- per-request causal tracing ----------------------------------------
  // A request is one offered chunk; its id is the offered-chunk index, which
  // is stable across checkpoint/resume. Request traces are observational in
  // exactly the monitor's sense: they read the simulated durations the serve
  // path already computed and never move `now`, so attaching them cannot
  // change predictions, timings, or checkpoint bytes (beyond the two
  // checkpointed attribution accumulators, which are themselves derived).
  obs::ExemplarStore exemplar_store(config.exemplars);
  obs::TraceContext* const trace = framework.trace_context();

  const auto finish_request = [&](obs::RequestTrace&& rt,
                                  std::optional<obs::ExemplarReason> reason) {
    result.attribution_total += rt.attribution;
    ++result.requests_traced;
    // Energy rides the finalized attribution on every outcome path — shed and
    // expired requests burned real (queue-wait) joules too. Buffered until
    // the lazily sized accountant exists, like admission records.
    obs::EnergyAccountant::Request ereq;
    ereq.at = rt.end;
    ereq.attribution = rt.attribution;
    ereq.outcome = rt.outcome;
    ereq.samples = rt.outcome == obs::RequestOutcome::kServed ? rt.samples : 0;
    ereq.degraded = rt.tier != 0;
    ereq.request_id = static_cast<std::int64_t>(rt.request_id);
    if (energy.has_value()) {
      log_clock = rt.end.to_seconds();
      energy->record(ereq);
    } else {
      pending_energy.push_back(ereq);
    }
    if (reason.has_value()) {
      exemplar_store.offer(*reason, rt);
    }
    result.requests.push_back(std::move(rt));
    if (trace != nullptr) {
      trace->end_request();
    }
  };

  const auto build_checkpoint = [&]() {
    ByteWriter w;
    w.write<std::uint32_t>(kServeMagic);
    w.write<std::uint32_t>(kServeVersion);
    write_fingerprint(w, config);
    w.write<std::uint32_t>(next_arrival);
    w.write<double>(now.to_seconds());
    w.write<double>(result.warmup_accuracy);
    w.write<std::uint32_t>(served_count);
    learner.serialize(w);
    reduced_learner.serialize(w);
    w.write_vector(core::serialize_classifier(deployed_full));
    w.write_vector(core::serialize_classifier(deployed_reduced));
    health.serialize(w);
    Rng::State rng{};
    if (const tpu::FaultInjector* injector = endpoint.device().fault_injector()) {
      rng = injector->rng_state();
    }
    for (const std::uint64_t word : rng.s) {
      w.write<std::uint64_t>(word);
    }
    w.write<std::uint8_t>(rng.has_spare_gaussian ? 1 : 0);
    w.write<float>(rng.spare_gaussian);
    w.write<std::uint32_t>(static_cast<std::uint32_t>(queue.size()));
    for (const PendingChunk& item : queue) {
      w.write<std::uint32_t>(item.index);
      w.write<double>(item.arrival.to_seconds());
    }
    w.write_vector(result.predictions);
    w.write<std::uint32_t>(static_cast<std::uint32_t>(result.chunks.size()));
    for (const auto& chunk : result.chunks) {
      write_chunk_stats(w, chunk);
    }
    for (const auto& tier : result.tiers) {
      w.write<std::uint64_t>(tier.samples);
      w.write<std::uint64_t>(tier.errors);
      w.write<double>(tier.service_time.to_seconds());
    }
    w.write<std::uint64_t>(result.shed_samples);
    w.write<std::uint64_t>(result.expired_samples);
    w.write<std::uint64_t>(result.degraded_samples);
    w.write<std::uint32_t>(result.shed_chunks);
    w.write<std::uint32_t>(result.expired_chunks);
    w.write<std::uint64_t>(correct_total);
    w.write<std::uint64_t>(samples_served);
    w.write<std::uint32_t>(result.snapshots_written);
    w.write<std::uint32_t>(result.checkpoints_written + 1);
    for (const SimDuration& stage : result.attribution_total.stages) {
      w.write<double>(stage.to_seconds());
    }
    w.write<std::uint64_t>(result.requests_traced);
    w.write<std::uint8_t>(monitor.has_value() ? 1 : 0);
    if (monitor.has_value()) {
      monitor->serialize(w);
    }
    w.write<std::uint8_t>(model_stats.has_value() ? 1 : 0);
    if (model_stats.has_value()) {
      model_stats->serialize(w);
    }
    w.write<std::uint8_t>(energy.has_value() ? 1 : 0);
    if (energy.has_value()) {
      energy->serialize(w);
    }
    const std::uint32_t checksum = crc32(w.bytes().data(), w.size());
    w.write<std::uint32_t>(checksum);
    return w.take();
  };

  const auto serve_one = [&](PendingChunk&& item) {
    const SimDuration start = std::max(now, item.arrival);
    const SimDuration wait = start - item.arrival;
    const std::size_t n = item.data.num_samples();

    obs::RequestTrace rt;
    rt.begin(item.index, item.arrival);
    rt.samples = n;
    if (!wait.is_zero()) {
      rt.append(obs::Stage::kQueueWait, wait);
    }
    if (trace != nullptr) {
      // Open the causal scope for this request: every span the executor /
      // device / link layers emit below is stamped with this id.
      trace->set_now(item.arrival);
      trace->begin_request(item.index);
      if (!wait.is_zero()) {
        trace->span(obs::Track::kExecutor, "serve.queue_wait", wait,
                    {{"samples", n}});
      }
    }

    // Pick the ladder tier: device health first, then backlog pressure. A
    // quarantined device whose probe interval elapsed flips to probing here.
    const ServeTier tier =
        health.admit_tier(start, queue.size(), config.admission.degrade_backlog);
    sync_quarantine(start);
    if (trace != nullptr) {
      trace->instant_at(obs::Track::kExecutor, "serve.admit_tier", start,
                        {{"tier", tier_name(tier)},
                         {"queue_depth", queue.size()}});
    }

    const SimDuration deadline = config.admission.deadline;
    if (!deadline.is_zero()) {
      // Expire unserved when even the first sample cannot complete within
      // its remaining budget (the deadline is measured from chunk arrival).
      // The check itself is admission bookkeeping and costs no simulated time.
      const SimDuration nominal = endpoint.nominal_per_sample(tier);
      if (wait + nominal > deadline) {
        result.expired_samples += n;
        ++result.expired_chunks;
        record_admission(start, n, 0, n, 0);
        rt.outcome = obs::RequestOutcome::kExpired;
        rt.tier = static_cast<std::uint8_t>(tier);
        rt.finalize(start);
        if (trace != nullptr) {
          trace->instant_at(obs::Track::kExecutor, "serve.expired", start,
                            {{"wait_us", wait.to_seconds() * 1e6},
                             {"deadline_us", deadline.to_seconds() * 1e6}});
        }
        finish_request(std::move(rt), obs::ExemplarReason::kExpired);
        return;
      }
    }
    const SimDuration budget = deadline.is_zero() ? SimDuration() : deadline - wait;

    ServingEndpoint::BatchOutcome outcome =
        endpoint.infer(tier, item.data.features, start, budget, &rt);
    const SimDuration per_sample = outcome.total * (1.0 / static_cast<double>(n));
    SimDuration chunk_end = start + outcome.total;

    if (tier != ServeTier::kHost) {
      // Any retry, fallback sample or circuit trip marks the batch faulty
      // for the health machine; the monitor never feeds back into this.
      const bool faulty = outcome.report.circuit_opened || outcome.report.cpu_samples > 0 ||
                          outcome.report.device_stats.invoke_retries > 0;
      health.on_batch(chunk_end, faulty, outcome.report.circuit_opened);
    }

    if (!monitor.has_value()) {
      obs::MonitorConfig mc = config.monitor;
      mc.num_classes = spec.classes;
      if (mc.window.span.is_zero()) {
        mc.window.span = outcome.total * 4.0;
      }
      if (mc.window.buckets == 0) {
        mc.window.buckets = 16;
      }
      if (mc.slo_latency.is_zero()) {
        mc.slo_latency = per_sample * 1.5;
      }
      monitor.emplace(mc);
      for (const AdmissionRecord& rec : pending_admission) {
        monitor->record_admission(rec.at, rec.offered, rec.shed, rec.expired, rec.degraded);
      }
      pending_admission.clear();

      // The model-quality monitor shares the serving monitor's lifecycle and
      // (resolved) window, and sees the classifier actually deployed on the
      // endpoint first.
      obs::ModelStatsConfig msc = config.model_stats;
      msc.num_classes = spec.classes;
      msc.dim = config.learner.dim;
      msc.window = mc.window;
      model_stats.emplace(msc);
      model_stats->observe_model(deployed_full.model.class_hypervectors());

      // The energy accountant shares the resolved monitor window; requests
      // finished before this point (shed/expired ahead of the first served
      // chunk) are replayed in order.
      obs::EnergyConfig ec = config.energy;
      ec.window = mc.window;
      energy.emplace(ec);
      for (const obs::EnergyAccountant::Request& req : pending_energy) {
        energy->record(req);
      }
      pending_energy.clear();
    }
    sync_quarantine(chunk_end);

    // Per-sample records: completion times spread uniformly across the
    // chunk's simulated duration, latency includes the admission-queue wait,
    // margins from the host scoring model.
    std::uint64_t host_errors = 0;
    std::uint64_t chunk_correct = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t predicted = outcome.predictions[j];
      const std::uint32_t label = item.data.labels[j];
      // Encode once; the decision and the per-dimension discriminability
      // window both consume the same hypervector.
      const std::vector<float> encoded = learner.encode(item.data.features.row(j));
      const core::OnlineLearner::Decision decision = learner.decide_encoded(encoded);

      obs::ServingMonitor::Sample sample;
      sample.at = start + per_sample * static_cast<double>(j + 1);
      sample.latency = wait + per_sample;
      sample.request_id = static_cast<std::int64_t>(item.index);
      sample.predicted = predicted;
      sample.correct = predicted == label;
      sample.margin = decision.margin();
      log_clock = sample.at.to_seconds();
      monitor->record(sample);

      // Served samples only — shed/expired chunks never reach this loop, so
      // confusion row sums stay exactly equal to per-class served counts.
      obs::ModelQualityStats::Sample msample;
      msample.at = sample.at;
      msample.predicted = predicted;
      msample.label = label;
      msample.top1 = static_cast<double>(decision.top1);
      msample.request_id = static_cast<std::int64_t>(item.index);
      model_stats->record(msample);
      model_stats->record_dimensions(sample.at, label, encoded);

      if (config.online_updates) {
        if (learner.learn(item.data.features.row(j), label) != label) {
          ++host_errors;
        }
        // The reduced-tier learner adapts on the same pass; its update cost
        // piggybacks on the full learner's charged update below (a documented
        // simplification that keeps fault-free timings identical to serving
        // without the ladder).
        reduced_learner.learn(item.data.features.row(j), label);
      }
      result.predictions.push_back(predicted);
      chunk_correct += predicted == label ? 1 : 0;
    }

    log_clock = chunk_end.to_seconds();
    monitor->record_transport(chunk_end, n, outcome.report.cpu_samples,
                              outcome.report.device_stats.invoke_retries);
    record_admission(chunk_end, n, 0, 0, tier != ServeTier::kFull ? n : 0);

    // Host-side class-hypervector updates are real simulated work; price
    // them with the same cost machinery the trainers use. Monitoring itself
    // is never charged — attaching it cannot move the clock.
    SimDuration update_cost;
    if (config.online_updates) {
      const double update_fraction =
          n == 0 ? 0.0 : static_cast<double>(host_errors) / static_cast<double>(n);
      update_cost = framework.cost_model().update_phase(
          n, config.learner.dim, spec.classes, 1, update_fraction,
          framework.config().host);
      chunk_end += update_cost;
    }
    now = chunk_end;

    if (!update_cost.is_zero()) {
      rt.append(obs::Stage::kUpdate, update_cost);
      if (trace != nullptr) {
        trace->span_at(obs::Track::kHost, "serve.online_update", now - update_cost,
                       update_cost, {{"samples", n}});
      }
    }
    rt.outcome = obs::RequestOutcome::kServed;
    rt.tier = static_cast<std::uint8_t>(tier);
    rt.faulty = outcome.report.circuit_opened || outcome.report.cpu_samples > 0 ||
                outcome.report.device_stats.invoke_retries > 0;
    rt.finalize(now);
    monitor->record_attribution(now, rt.attribution);

    // Tail-based retention: keep the full chain only when this request left
    // the full tier (or spilled samples to the host) or its per-sample
    // latency reaches the windowed p99 at its own completion time. The
    // slowest request in any window always qualifies, so alarm exemplar ids
    // resolve to retained chains (barring later eviction under the bound).
    std::optional<obs::ExemplarReason> reason;
    if (tier != ServeTier::kFull || outcome.report.cpu_samples > 0) {
      reason = obs::ExemplarReason::kTierFallback;
    } else if (wait + per_sample >= monitor->latency_quantile(now, 0.99)) {
      reason = obs::ExemplarReason::kTailLatency;
    }
    finish_request(std::move(rt), reason);

    auto& tier_stats = result.tiers[static_cast<std::size_t>(tier)];
    tier_stats.samples += n;
    tier_stats.errors += n - chunk_correct;
    tier_stats.service_time += outcome.total;
    if (tier != ServeTier::kFull) {
      result.degraded_samples += n;
    }
    correct_total += chunk_correct;
    samples_served += n;
    ++served_count;

    if (config.online_updates && config.model_refresh_chunks > 0 &&
        served_count % config.model_refresh_chunks == 0) {
      // Redeploy both adapted learners. Model swaps ride the uncharged
      // one-time-upload convention, so a refresh moves no simulated time.
      deployed_full = learner.freeze();
      deployed_reduced = reduced_learner.freeze();
      // Boundary validation: a refresh (either ladder tier) must never change
      // the class count mid-stream — the monitors' per-class state would
      // silently mis-index otherwise. observe_model re-checks shape itself.
      HDC_CHECK(deployed_full.num_classes() == spec.classes,
                "model refresh changed the full-tier class count mid-stream");
      HDC_CHECK(deployed_reduced.num_classes() == spec.classes,
                "model refresh changed the reduced-tier class count mid-stream");
      model_stats->observe_model(deployed_full.model.class_hypervectors());
      endpoint.deploy(ServeTier::kFull, deployed_full, representative);
      endpoint.deploy(ServeTier::kReduced, deployed_reduced, representative);
    }

    ServeResult::ChunkStats stats;
    stats.index = item.index;
    stats.t_end = now;
    stats.samples = n;
    stats.chunk_accuracy =
        n == 0 ? 0.0 : static_cast<double>(chunk_correct) / static_cast<double>(n);
    stats.windowed_accuracy = monitor->windowed_accuracy(now);
    stats.drift_score = monitor->drift_score();
    stats.fallback_samples = outcome.report.cpu_samples;
    stats.circuit_opened = outcome.report.circuit_opened;
    stats.tier = tier;
    stats.queue_wait = wait;
    stats.health = health.state();
    result.chunks.push_back(stats);

    const bool interval_due = config.snapshot_every_chunks > 0 &&
                              served_count % config.snapshot_every_chunks == 0;
    if (interval_due) {
      const obs::MonitorSnapshot snap = take_snapshot(now);
      if (!config.snapshot_dir.empty()) {
        ++result.snapshots_written;
        write_text_file(snapshot_path(config.snapshot_dir, result.snapshots_written),
                        snap.to_json());
      }
      if (!config.prometheus_path.empty()) {
        write_text_file(config.prometheus_path, snap.to_prometheus());
      }
    }

    if (!config.checkpoint_path.empty() && config.checkpoint_every_chunks > 0 &&
        served_count % config.checkpoint_every_chunks == 0) {
      // Latest-wins at the configured path (crash recovery resumes from it)
      // plus a numbered history file, so any intermediate cut stays
      // addressable for audits and resume tests.
      const std::vector<std::uint8_t> bytes = build_checkpoint();
      write_file(config.checkpoint_path, bytes);
      char suffix[16];
      std::snprintf(suffix, sizeof(suffix), ".%04u", served_count);
      write_file(config.checkpoint_path + suffix, bytes);
      ++result.checkpoints_written;
    }
  };

  if (!open_loop) {
    // Closed loop: each chunk arrives exactly when the previous one finished
    // — no queue, no shedding, the legacy serving schedule.
    while (next_arrival < config.serve_chunks) {
      data::Dataset chunk = stream.next_chunk();
      const std::uint32_t index = next_arrival++;
      serve_one(PendingChunk{index, now, std::move(chunk)});
    }
  } else {
    // Open loop: arrivals on a fixed schedule, a bounded queue in front of
    // the endpoint, deterministic shedding when it overflows. Arrivals due
    // at or before the next service start are admitted first, so queue
    // occupancy (and shedding) is an exact function of simulated time.
    while (next_arrival < config.serve_chunks || !queue.empty()) {
      bool admit = false;
      if (next_arrival < config.serve_chunks) {
        if (queue.empty()) {
          admit = true;
        } else {
          const SimDuration next_at =
              arrival_period * static_cast<double>(next_arrival);
          const SimDuration service_start = std::max(now, queue.front().arrival);
          admit = next_at <= service_start;
        }
      }
      if (admit) {
        const SimDuration arrival = arrival_period * static_cast<double>(next_arrival);
        data::Dataset chunk = stream.next_chunk();
        const std::uint32_t index = next_arrival++;
        if (queue.size() >= config.admission.queue_capacity) {
          if (config.admission.policy == ShedPolicy::kRejectNewest) {
            result.shed_samples += chunk.num_samples();
            ++result.shed_chunks;
            record_admission(arrival, chunk.num_samples(), chunk.num_samples(), 0, 0);
            obs::RequestTrace rt;
            rt.begin(index, arrival);
            rt.samples = chunk.num_samples();
            rt.outcome = obs::RequestOutcome::kShed;
            rt.finalize(arrival);  // refused on arrival: zero latency
            if (trace != nullptr) {
              trace->begin_request(index);
              trace->instant_at(obs::Track::kExecutor, "serve.shed", arrival,
                                {{"policy", "reject_newest"},
                                 {"queue_depth", queue.size()}});
            }
            finish_request(std::move(rt), obs::ExemplarReason::kShed);
            continue;  // the arriving chunk is refused
          }
          // kDropOldest: the stalest queued chunk makes room.
          PendingChunk dropped = std::move(queue.front());
          queue.pop_front();
          result.shed_samples += dropped.data.num_samples();
          ++result.shed_chunks;
          record_admission(arrival, dropped.data.num_samples(),
                           dropped.data.num_samples(), 0, 0);
          obs::RequestTrace rt;
          rt.begin(dropped.index, dropped.arrival);
          rt.samples = dropped.data.num_samples();
          rt.outcome = obs::RequestOutcome::kShed;
          if (arrival > dropped.arrival) {
            // Time the victim sat queued before being dropped.
            rt.append(obs::Stage::kQueueWait, arrival - dropped.arrival);
          }
          rt.finalize(arrival);
          if (trace != nullptr) {
            trace->begin_request(dropped.index);
            trace->instant_at(obs::Track::kExecutor, "serve.shed", arrival,
                              {{"policy", "drop_oldest"},
                               {"queue_depth", queue.size()}});
          }
          finish_request(std::move(rt), obs::ExemplarReason::kShed);
        }
        queue.push_back(PendingChunk{index, arrival, std::move(chunk)});
      } else {
        PendingChunk item = std::move(queue.front());
        queue.pop_front();
        serve_one(std::move(item));
      }
    }
  }

  if (!monitor.has_value()) {
    // Degenerate session: every offered chunk was shed or expired before a
    // single one was served, so the auto-sizing never saw a chunk timing.
    obs::MonitorConfig mc = config.monitor;
    mc.num_classes = spec.classes;
    if (mc.window.span.is_zero()) {
      mc.window.span = SimDuration::millis(1);
    }
    if (mc.window.buckets == 0) {
      mc.window.buckets = 16;
    }
    if (mc.slo_latency.is_zero()) {
      mc.slo_latency = SimDuration::micros(100);
    }
    monitor.emplace(mc);
    for (const AdmissionRecord& rec : pending_admission) {
      monitor->record_admission(rec.at, rec.offered, rec.shed, rec.expired, rec.degraded);
    }
    pending_admission.clear();

    obs::ModelStatsConfig msc = config.model_stats;
    msc.num_classes = spec.classes;
    msc.dim = config.learner.dim;
    msc.window = mc.window;
    model_stats.emplace(msc);
    model_stats->observe_model(deployed_full.model.class_hypervectors());

    obs::EnergyConfig ec = config.energy;
    ec.window = mc.window;
    energy.emplace(ec);
    for (const obs::EnergyAccountant::Request& req : pending_energy) {
      energy->record(req);
    }
    pending_energy.clear();
  }

  result.final_snapshot = take_snapshot(now);
  result.events = monitor->events();
  if (model_stats.has_value()) {
    result.final_model = model_stats->snapshot(now);
    result.model_events = model_stats->events();
  }
  if (energy.has_value()) {
    result.final_energy = energy->snapshot(now);
    result.energy_events = energy->events();
  }
  result.t_end = now;
  // Lifetime totals come from the serve accumulators; the monitor (restored
  // warm from the checkpoint since HDSV v3) agrees, but the accumulators are
  // the source of truth for results.
  result.samples_served = samples_served;
  result.lifetime_accuracy =
      samples_served == 0
          ? 0.0
          : static_cast<double>(correct_total) / static_cast<double>(samples_served);
  result.final_health = health.state();
  result.health_transitions = health.transitions();
  result.quarantines = health.quarantines();
  result.probes = health.probes_attempted();

  if (!config.snapshot_dir.empty()) {
    ++result.snapshots_written;
    write_text_file(
        (std::filesystem::path(config.snapshot_dir) / "monitor_snapshot_final.json")
            .string(),
        result.final_snapshot.to_json());
  }
  if (!config.prometheus_path.empty()) {
    write_text_file(config.prometheus_path, result.final_snapshot.to_prometheus());
  }
  if (!config.checkpoint_path.empty()) {
    write_file(config.checkpoint_path, build_checkpoint());
    ++result.checkpoints_written;
  }

  result.exemplar_records.assign(exemplar_store.exemplars().begin(),
                                 exemplar_store.exemplars().end());
  result.exemplar_bytes = exemplar_store.approx_bytes();
  result.exemplar_bytes_peak = exemplar_store.peak_bytes();
  result.exemplars_evicted = exemplar_store.evicted();
  if (trace != nullptr) {
    result.trace_events = trace->size();
    result.trace_dropped = trace->dropped();
  }
  std::string exemplar_path = config.exemplar_path;
  if (exemplar_path.empty() && !config.snapshot_dir.empty()) {
    exemplar_path =
        (std::filesystem::path(config.snapshot_dir) / "exemplars.jsonl").string();
  }
  if (!exemplar_path.empty()) {
    write_text_file(exemplar_path, exemplar_store.to_jsonl());
  }

  log_clock = now.to_seconds();
  HDC_LOG_INFO << "serve: " << result.samples_served << " samples over "
               << result.t_end.to_string() << " simulated, lifetime accuracy "
               << result.lifetime_accuracy << ", final device health "
               << health_name(result.final_health) << ", "
               << result.requests_traced << " requests traced, "
               << result.exemplar_records.size() << " exemplars ("
               << result.exemplar_bytes << " bytes, peak "
               << result.exemplar_bytes_peak << ")"
               << (result.trace_dropped > 0
                       ? ", trace events dropped: " + std::to_string(result.trace_dropped)
                       : std::string());
  return result;
}

std::string checkpoint_model_stats_json(const std::string& path) {
  RestoredState state = read_checkpoint(path, nullptr);
  HDC_CHECK(state.model_stats.has_value(),
            "checkpoint '" + path +
                "' carries no model-quality state (the interrupted run never "
                "served a chunk)");
  const obs::ModelStatsSnapshot snap = state.model_stats->snapshot(state.now);
  std::string out = "{\"schema\":\"hdc-modelstats-v1\",\"t_s\":";
  obs::detail::append_json_number(out, state.now.to_seconds());
  out += ",\"lifetime\":{\"samples\":";
  out += std::to_string(state.samples_served);
  out += "},\"model\":";
  out += snap.to_json();
  out += "}";
  return out;
}

std::string checkpoint_energy_json(const std::string& path) {
  RestoredState state = read_checkpoint(path, nullptr);
  HDC_CHECK(state.energy.has_value(),
            "checkpoint '" + path +
                "' carries no energy state (the interrupted run never served "
                "a chunk)");
  const obs::EnergySnapshot snap = state.energy->snapshot(state.now);
  std::string out = "{\"schema\":\"hdc-energystats-v1\",\"t_s\":";
  obs::detail::append_json_number(out, state.now.to_seconds());
  out += ",\"lifetime\":{\"samples\":";
  out += std::to_string(state.samples_served);
  out += "},\"energy\":";
  out += snap.to_json();
  out += "}";
  return out;
}

}  // namespace hdc::runtime
