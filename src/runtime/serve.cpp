#include "runtime/serve.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace hdc::runtime {

namespace {

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HDC_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << content;
  HDC_CHECK(out.good(), "failed writing '" + path + "'");
}

std::string snapshot_path(const std::string& dir, std::uint32_t index) {
  char name[48];
  std::snprintf(name, sizeof(name), "monitor_snapshot_%04u.json", index);
  return (std::filesystem::path(dir) / name).string();
}

/// Feeds the serving loop's simulated clock to the structured log for the
/// lifetime of the session, so JSONL records (alarm edges in particular)
/// carry `t_s` in simulated seconds.
class LogClockScope {
 public:
  explicit LogClockScope(const double* clock) {
    log::set_time_provider([clock] { return *clock; });
  }
  ~LogClockScope() { log::set_time_provider(nullptr); }
  LogClockScope(const LogClockScope&) = delete;
  LogClockScope& operator=(const LogClockScope&) = delete;
};

}  // namespace

void ServeConfig::validate() const {
  stream.validate();
  HDC_CHECK(warmup_chunks >= 1,
            "serving needs at least one warmup chunk (it doubles as the "
            "quantization-calibration set)");
  HDC_CHECK(serve_chunks >= 1, "nothing to serve: serve_chunks must be positive");
  HDC_CHECK(learner.dim > 0, "learner dimension must be positive");
  faults.validate();
  retry.validate();
  // The monitor config is completed (num_classes, auto window/SLO) at serve
  // time and validated by the ServingMonitor constructor.
}

ServeResult serve(const CoDesignFramework& framework, const ServeConfig& config) {
  config.validate();
  const data::SyntheticSpec& spec = config.stream.spec;

  data::DriftStream stream(config.stream);
  core::OnlineLearner learner(spec.features, spec.classes, config.learner);

  // ---- warmup: train the host learner, keep chunk 0 as calibration set ----
  data::Dataset representative;
  double warmup_accuracy_sum = 0.0;
  for (std::uint32_t w = 0; w < config.warmup_chunks; ++w) {
    data::Dataset chunk = stream.next_chunk();
    warmup_accuracy_sum += learner.learn_batch(chunk);
    if (w == 0) {
      representative = std::move(chunk);
    }
  }

  core::TrainedClassifier classifier = learner.freeze();

  ServeResult result;
  result.warmup_accuracy = warmup_accuracy_sum / config.warmup_chunks;

  if (!config.snapshot_dir.empty()) {
    std::filesystem::create_directories(config.snapshot_dir);
  }

  // Constructed after the first served chunk when the window span or the SLO
  // target is auto-sized (both derive from simulated chunk timings, so the
  // monitor stays deterministic).
  std::optional<obs::ServingMonitor> monitor;

  SimDuration now;
  double log_clock = 0.0;
  LogClockScope log_scope(&log_clock);
  for (std::uint32_t i = 0; i < config.serve_chunks; ++i) {
    const data::Dataset chunk = stream.next_chunk();

    ResilienceReport report;
    const CoDesignFramework::InferOutcome outcome = framework.infer_tpu_resilient(
        classifier, chunk, representative, config.faults, config.retry, &report);

    if (!monitor.has_value()) {
      obs::MonitorConfig mc = config.monitor;
      mc.num_classes = spec.classes;
      if (mc.window.span.is_zero()) {
        mc.window.span = outcome.timings.total * 4.0;
      }
      if (mc.window.buckets == 0) {
        mc.window.buckets = 16;
      }
      if (mc.slo_latency.is_zero()) {
        mc.slo_latency = outcome.timings.per_sample * 1.5;
      }
      monitor.emplace(mc);
    }

    // Per-sample records: completion times spread uniformly across the
    // chunk's simulated duration, margins from the host scoring model.
    const std::size_t n = chunk.num_samples();
    const SimDuration per_sample = outcome.timings.per_sample;
    std::uint64_t host_errors = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t predicted = outcome.predictions[j];
      const std::uint32_t label = chunk.labels[j];
      const core::OnlineLearner::Decision decision = learner.decide(chunk.features.row(j));

      obs::ServingMonitor::Sample sample;
      sample.at = now + per_sample * static_cast<double>(j + 1);
      sample.latency = per_sample;
      sample.predicted = predicted;
      sample.correct = predicted == label;
      sample.margin = decision.margin();
      log_clock = sample.at.to_seconds();
      monitor->record(sample);

      if (config.online_updates) {
        if (learner.learn(chunk.features.row(j), label) != label) {
          ++host_errors;
        }
      }
      result.predictions.push_back(predicted);
    }

    SimDuration chunk_end = now + outcome.timings.total;
    log_clock = chunk_end.to_seconds();
    monitor->record_transport(chunk_end, n, report.cpu_samples,
                              report.device_stats.invoke_retries);

    // Host-side class-hypervector updates are real simulated work; price
    // them with the same cost machinery the trainers use. Monitoring itself
    // is never charged — attaching it cannot move the clock.
    if (config.online_updates) {
      const double update_fraction =
          n == 0 ? 0.0 : static_cast<double>(host_errors) / static_cast<double>(n);
      chunk_end += framework.cost_model().update_phase(
          n, config.learner.dim, spec.classes, 1, update_fraction,
          framework.config().host);
    }
    now = chunk_end;

    if (config.online_updates && config.model_refresh_chunks > 0 &&
        (i + 1) % config.model_refresh_chunks == 0) {
      // Redeploy the adapted learner. The accelerator model is rebuilt and
      // re-quantized every chunk by the resilient path, so a refresh swaps
      // the weights without additional simulated cost here.
      classifier = learner.freeze();
    }

    ServeResult::ChunkStats stats;
    stats.index = i;
    stats.t_end = now;
    stats.samples = n;
    stats.chunk_accuracy = outcome.accuracy;
    stats.windowed_accuracy = monitor->windowed_accuracy(now);
    stats.drift_score = monitor->drift_score();
    stats.fallback_samples = report.cpu_samples;
    stats.circuit_opened = report.circuit_opened;
    result.chunks.push_back(stats);

    const bool interval_due = config.snapshot_every_chunks > 0 &&
                              (i + 1) % config.snapshot_every_chunks == 0;
    if (interval_due) {
      const obs::MonitorSnapshot snap = monitor->snapshot(now);
      if (!config.snapshot_dir.empty()) {
        ++result.snapshots_written;
        write_text_file(snapshot_path(config.snapshot_dir, result.snapshots_written),
                        snap.to_json());
      }
      if (!config.prometheus_path.empty()) {
        write_text_file(config.prometheus_path, snap.to_prometheus());
      }
    }
  }

  result.final_snapshot = monitor->snapshot(now);
  result.events = monitor->events();
  result.t_end = now;
  result.samples_served = monitor->samples_total();
  result.lifetime_accuracy = result.final_snapshot.lifetime_accuracy;

  if (!config.snapshot_dir.empty()) {
    ++result.snapshots_written;
    write_text_file(
        (std::filesystem::path(config.snapshot_dir) / "monitor_snapshot_final.json")
            .string(),
        result.final_snapshot.to_json());
  }
  if (!config.prometheus_path.empty()) {
    write_text_file(config.prometheus_path, result.final_snapshot.to_prometheus());
  }

  log_clock = now.to_seconds();
  HDC_LOG_INFO << "serve: " << result.samples_served << " samples over "
               << result.t_end.to_string() << " simulated, lifetime accuracy "
               << result.lifetime_accuracy;
  return result;
}

}  // namespace hdc::runtime
