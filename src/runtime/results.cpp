#include "runtime/results.hpp"

#include <cstdio>
#include <sstream>

#include "common/byte_io.hpp"
#include "common/error.hpp"

namespace hdc::runtime {

ResultTable::ResultTable(std::vector<std::string> columns) : columns_(std::move(columns)) {
  HDC_CHECK(!columns_.empty(), "a result table needs at least one column");
}

void ResultTable::add_row(std::vector<std::string> cells) {
  HDC_CHECK(cells.size() == columns_.size(), "row width disagrees with column count");
  rows_.push_back(std::move(cells));
}

std::string ResultTable::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string ResultTable::to_text() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(columns_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) {
    rule += w + 2;
  }
  os << std::string(rule > 2 ? rule - 2 : rule, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      out += '"';
    }
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string ResultTable::to_csv() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csv_escape(cells[c]);
      if (c + 1 < cells.size()) {
        os << ",";
      }
    }
    os << "\n";
  };
  emit_row(columns_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void ResultTable::save_csv(const std::string& path) const {
  const std::string csv = to_csv();
  write_file(path, {reinterpret_cast<const std::uint8_t*>(csv.data()), csv.size()});
}

}  // namespace hdc::runtime
