#pragma once

#include <cstdint>
#include <vector>

#include "core/bagging.hpp"
#include "runtime/framework.hpp"

namespace hdc::runtime {

/// Grid for the bagging parameter search (what Section IV-D of the paper
/// does by hand for ISOLET, packaged as a library facility).
struct AutotuneSpace {
  std::vector<std::uint32_t> num_models = {2, 4, 8};
  std::vector<std::uint32_t> epochs = {4, 6, 8};
  std::vector<double> alphas = {0.4, 0.6, 0.8, 1.0};

  std::size_t size() const { return num_models.size() * epochs.size() * alphas.size(); }
  void validate() const;
};

struct AutotuneCandidate {
  core::BaggingConfig config;
  double accuracy = 0.0;              ///< measured on the holdout split
  SimDuration projected_train_time;   ///< at the full-scale workload shape
};

struct AutotuneResult {
  AutotuneCandidate best;                 ///< fastest within the accuracy margin
  std::vector<AutotuneCandidate> all;     ///< every evaluated candidate
  double best_accuracy_seen = 0.0;
};

/// Searches the bagging design space: every candidate trains *functionally*
/// (reduced scale, real accuracy) and is priced *analytically* at the
/// full-scale workload shape; the winner is the fastest configuration whose
/// accuracy is within `accuracy_margin` of the best seen — the same
/// runtime/accuracy balance the paper strikes (alpha = 0.6, I' = 6).
class BaggingAutotuner {
 public:
  BaggingAutotuner(const CoDesignFramework& framework, WorkloadShape full_scale);

  AutotuneResult search(const data::Dataset& train, const data::Dataset& holdout,
                        const AutotuneSpace& space, const core::HdConfig& base,
                        double accuracy_margin = 0.01) const;

 private:
  const CoDesignFramework& framework_;
  WorkloadShape full_scale_;
};

}  // namespace hdc::runtime
