#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "obs/energy.hpp"
#include "obs/monitor.hpp"
#include "obs/request_trace.hpp"
#include "runtime/health.hpp"
#include "runtime/serve.hpp"

namespace hdc::runtime {

/// Fleet serving: one router fanning a multi-tenant open-loop request stream
/// across N simulated Edge TPUs (`ServeConfig::fleet`).
///
/// Each tenant owns an independent drifting stream and a model trained on
/// its own warmup prefix; each device is a full simulated accelerator (MXU +
/// USB link + parameter SRAM + fault injector + health state machine) with a
/// bounded admission queue in front of it. The router places every arriving
/// chunk on a device (`PlacementPolicy`), coalesces queued same-tenant
/// chunks into dynamic micro-batches (up to `batch_max_chunks`, held at most
/// `batch_max_age` past the head's arrival), and pays the tenant-model swap
/// — a charged weight upload, unlike single-device serving's uncharged
/// deploys — exactly when a batch lands on a device whose SRAM holds a
/// different tenant's parameters.
///
/// Batched invocations run the pipelined streaming path (double-buffered
/// link/compute overlap, no per-sample interactive round trip), which is
/// what amortizes the per-invoke USB overhead; unbatched fleets
/// (`batch_max_chunks == 1`) use the same interactive invoke as
/// single-device serving. Predictions are bit-identical either way — the
/// functional math is per-sample — so batching is a pure latency/throughput
/// trade, pinned by tests.
///
/// Determinism: a fixed `ServeConfig` reproduces bit-identical placements,
/// batch compositions, predictions, simulated timings, health transitions
/// and alarm edges. The fleet layer serves frozen per-tenant models (no
/// online updates) and does not checkpoint.
///
/// The degradation ladder collapses to device/host in fleet mode: only one
/// model per tenant is lowered, so a `kReduced` admission verdict runs the
/// full model on the device (still counted degraded — the verdict reflects
/// backlog/health pressure) and `kHost` runs the tenant's float model on the
/// CPU, never touching the device.
struct FleetShardResult {
  std::uint32_t device_index = 0;

  std::uint64_t requests_served = 0;
  std::uint64_t samples_served = 0;
  std::uint64_t shed_requests = 0;
  std::uint64_t expired_requests = 0;
  std::uint64_t degraded_requests = 0;

  std::uint64_t batches = 0;  ///< device/host invocations dispatched
  /// Parameter-cache telemetry: one lookup per dispatched batch; a miss is a
  /// charged tenant-model swap (hits + swaps == lookups).
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t swaps = 0;
  SimDuration swap_time;  ///< total charged weight-upload time

  SimDuration busy;   ///< simulated service time (swap + batch service)
  SimDuration t_end;  ///< completion of this shard's last batch

  DeviceHealth final_health = DeviceHealth::kHealthy;
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;

  obs::MonitorSnapshot final_snapshot;  ///< per-shard SLO view (hdc-monitor-v1)

  /// Total simulated energy attributed to this shard's requests, in integer
  /// picojoules (expired/shed requests placed here included). Shard ledgers
  /// HDC_CHECK-sum to the fleet accountant's total.
  std::int64_t energy_pj = 0;

  double mean_batch_chunks() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests_served) /
                              static_cast<double>(batches);
  }
  double cache_hit_rate() const {
    return cache_lookups == 0 ? 0.0
                              : static_cast<double>(cache_hits) /
                                    static_cast<double>(cache_lookups);
  }
};

/// What one fleet session produced. Conservation invariant (pinned by
/// tests): offered == served + shed + expired, in requests and in samples.
struct FleetResult {
  std::vector<FleetShardResult> shards;

  /// Served predictions concatenated in offered-request order (shed and
  /// expired requests contribute nothing).
  std::vector<std::uint32_t> predictions;
  /// Every offered request's causal chain (served, shed, expired alike), in
  /// offered order; attribution is bit-exact per request.
  std::vector<obs::RequestTrace> requests;

  std::uint64_t offered_requests = 0;
  std::uint64_t served_requests = 0;
  std::uint64_t shed_requests = 0;
  std::uint64_t expired_requests = 0;
  std::uint64_t offered_samples = 0;
  std::uint64_t samples_served = 0;
  std::uint64_t shed_samples = 0;
  std::uint64_t expired_samples = 0;
  std::uint64_t degraded_samples = 0;

  std::uint64_t batches = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t swaps = 0;
  double cache_hit_rate = 0.0;
  double mean_batch_chunks = 0.0;

  SimDuration t_end;  ///< completion of the last batch fleet-wide
  double lifetime_accuracy = 0.0;

  /// Fleet-aggregate monitor (all shards' samples in one window) and its
  /// alarm edge history; per-shard snapshots live in `shards`.
  obs::MonitorSnapshot fleet_snapshot;
  std::vector<obs::AlarmEvent> events;

  /// Fleet-aggregate model quality (outcomes/calibration only — tenants
  /// encode with different seeds, so cross-tenant dimension stats are
  /// meaningless and `dim` is 0) plus one full per-tenant view each
  /// (dimension discriminability against that tenant's own encoder).
  /// Conservation: the aggregate's samples_total == samples_served and the
  /// per-tenant samples_total sum to it.
  obs::ModelStatsSnapshot fleet_model;
  std::vector<obs::ModelStatsSnapshot> tenant_models;
  /// Model alarm edges from the fleet aggregate, separate from `events`.
  std::vector<obs::AlarmEvent> model_events;

  obs::RequestAttribution attribution_total;
  std::uint64_t requests_traced = 0;
  std::vector<obs::RequestExemplar> exemplar_records;

  /// Fleet-aggregate energy ledger (all requests, every outcome path) and
  /// its budget-alarm edge history. Conservation (pinned by HDC_CHECK): the
  /// per-shard `energy_pj` ledgers and the per-tenant ledgers below each sum
  /// bit-exactly to `fleet_energy.total_pj`.
  obs::EnergySnapshot fleet_energy;
  /// Per-tenant energy in picojoules, indexed by tenant id. Shed requests
  /// (which know their tenant) are charged to it; sums to the fleet total.
  std::vector<std::int64_t> tenant_energy_pj;
  std::vector<obs::AlarmEvent> energy_events;
};

/// Runs a fleet serving session to completion. Uses `config.stream` /
/// `config.learner` / `config.warmup_chunks` for each tenant's model,
/// `config.serve_chunks` as the *total* offered request count across the
/// fleet, `config.admission` per device queue (offered_load stays in
/// single-device full-tier service-rate units and must be positive — the
/// fleet router is open-loop only), and `config.fleet` for the fleet shape.
FleetResult serve_fleet(const CoDesignFramework& framework, const ServeConfig& config);

}  // namespace hdc::runtime
