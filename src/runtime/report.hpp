#pragma once

#include "common/sim_time.hpp"

namespace hdc::runtime {

/// Training runtime split into the paper's Fig.-5 components: training-set
/// encoding, class-hypervector update, and (one-time) accelerator model
/// generation.
struct TrainTimings {
  SimDuration encode;
  SimDuration update;
  SimDuration model_gen;

  SimDuration total() const { return encode + update + model_gen; }

  TrainTimings& operator+=(const TrainTimings& other) {
    encode += other.encode;
    update += other.update;
    model_gen += other.model_gen;
    return *this;
  }
};

/// Inference runtime (steady state — model preparation is a training-side
/// one-time cost in the paper and is excluded here, matching Fig. 6).
struct InferTimings {
  SimDuration per_sample;
  SimDuration total;
};

}  // namespace hdc::runtime
