#include "runtime/health.hpp"

#include "common/error.hpp"

namespace hdc::runtime {

const char* tier_name(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFull:
      return "full";
    case ServeTier::kReduced:
      return "reduced";
    case ServeTier::kHost:
      return "host";
  }
  return "unknown";
}

const char* health_name(DeviceHealth state) {
  switch (state) {
    case DeviceHealth::kHealthy:
      return "healthy";
    case DeviceHealth::kDegraded:
      return "degraded";
    case DeviceHealth::kQuarantined:
      return "quarantined";
    case DeviceHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  HDC_CHECK(degrade_after_faults >= 1, "degrade threshold must be positive");
  HDC_CHECK(quarantine_after_faults >= degrade_after_faults,
            "quarantine threshold must be at least the degrade threshold");
  HDC_CHECK(recover_after_successes >= 1, "recovery threshold must be positive");
  HDC_CHECK(probe_interval > SimDuration(),
            "probe interval must be positive (a quarantined device must "
            "eventually be probed, or it is quarantined forever)");
  HDC_CHECK(probe_successes >= 1, "probe success threshold must be positive");
}

const char* shed_policy_name(ShedPolicy policy) {
  return policy == ShedPolicy::kDropOldest ? "drop-oldest" : "reject-newest";
}

ShedPolicy parse_shed_policy(const std::string& name) {
  if (name == "reject-newest") {
    return ShedPolicy::kRejectNewest;
  }
  if (name == "drop-oldest") {
    return ShedPolicy::kDropOldest;
  }
  HDC_CHECK(false, "unknown shed policy '" + name +
                       "' (expected 'reject-newest' or 'drop-oldest')");
  return ShedPolicy::kRejectNewest;
}

void AdmissionConfig::validate() const {
  HDC_CHECK(offered_load >= 0.0,
            "offered load must be non-negative (0 = closed loop)");
  HDC_CHECK(queue_capacity >= 1,
            "admission queue capacity must be at least one chunk");
  HDC_CHECK(deadline >= SimDuration(),
            "request deadline must be non-negative (0 disables deadlines)");
  HDC_CHECK(degrade_backlog >= 1,
            "degrade backlog threshold must be at least one chunk");
}

DeviceHealthTracker::DeviceHealthTracker(HealthConfig config) : config_(config) {
  config_.validate();
}

void DeviceHealthTracker::enter(DeviceHealth to, SimDuration at) {
  if (to == state_) {
    return;
  }
  transitions_.push_back(Transition{state_, to, at});
  state_ = to;
  entered_at_ = at;
  if (to == DeviceHealth::kQuarantined) {
    ++quarantines_;
    probe_clean_ = 0;
  }
  consecutive_faults_ = 0;
  consecutive_successes_ = 0;
}

ServeTier DeviceHealthTracker::admit_tier(SimDuration now, std::size_t backlog_chunks,
                                          std::uint32_t degrade_backlog) {
  switch (state_) {
    case DeviceHealth::kHealthy:
      return backlog_chunks >= degrade_backlog ? ServeTier::kReduced : ServeTier::kFull;
    case DeviceHealth::kDegraded:
      return ServeTier::kReduced;
    case DeviceHealth::kProbing:
      return ServeTier::kReduced;
    case DeviceHealth::kQuarantined:
      if (now - entered_at_ >= config_.probe_interval) {
        // Half-open: one probe stream on the cheap tier; success re-admits,
        // any fault sends the device straight back to quarantine.
        enter(DeviceHealth::kProbing, now);
        probe_clean_ = 0;
        ++probes_;
        return ServeTier::kReduced;
      }
      return ServeTier::kHost;
  }
  return ServeTier::kHost;
}

void DeviceHealthTracker::on_batch(SimDuration at, bool faulty, bool circuit_opened) {
  if (state_ == DeviceHealth::kQuarantined) {
    return;  // nothing ran on the device
  }
  if (circuit_opened) {
    enter(DeviceHealth::kQuarantined, at);
    return;
  }
  if (faulty) {
    consecutive_successes_ = 0;
    ++consecutive_faults_;
    switch (state_) {
      case DeviceHealth::kHealthy:
        if (consecutive_faults_ >= config_.degrade_after_faults) {
          const std::uint32_t carried = consecutive_faults_;
          enter(DeviceHealth::kDegraded, at);
          consecutive_faults_ = carried;  // keep counting toward quarantine
        }
        break;
      case DeviceHealth::kDegraded:
        if (consecutive_faults_ >= config_.quarantine_after_faults) {
          enter(DeviceHealth::kQuarantined, at);
        }
        break;
      case DeviceHealth::kProbing:
        enter(DeviceHealth::kQuarantined, at);
        break;
      case DeviceHealth::kQuarantined:
        break;
    }
    return;
  }
  consecutive_faults_ = 0;
  switch (state_) {
    case DeviceHealth::kHealthy:
      break;
    case DeviceHealth::kDegraded:
      if (++consecutive_successes_ >= config_.recover_after_successes) {
        enter(DeviceHealth::kHealthy, at);
      }
      break;
    case DeviceHealth::kProbing:
      if (++probe_clean_ >= config_.probe_successes) {
        enter(DeviceHealth::kHealthy, at);
      }
      break;
    case DeviceHealth::kQuarantined:
      break;
  }
}

void DeviceHealthTracker::serialize(ByteWriter& writer) const {
  writer.write<std::uint8_t>(static_cast<std::uint8_t>(state_));
  writer.write<double>(entered_at_.to_seconds());
  writer.write<std::uint32_t>(consecutive_faults_);
  writer.write<std::uint32_t>(consecutive_successes_);
  writer.write<std::uint32_t>(probe_clean_);
  writer.write<std::uint64_t>(quarantines_);
  writer.write<std::uint64_t>(probes_);
  writer.write<std::uint64_t>(transitions_.size());
  for (const Transition& t : transitions_) {
    writer.write<std::uint8_t>(static_cast<std::uint8_t>(t.from));
    writer.write<std::uint8_t>(static_cast<std::uint8_t>(t.to));
    writer.write<double>(t.at.to_seconds());
  }
}

DeviceHealthTracker DeviceHealthTracker::deserialize(ByteReader& reader,
                                                     const HealthConfig& config) {
  DeviceHealthTracker tracker(config);
  const auto state = reader.read<std::uint8_t>();
  HDC_CHECK(state <= static_cast<std::uint8_t>(DeviceHealth::kProbing),
            "serialized device health state out of range");
  tracker.state_ = static_cast<DeviceHealth>(state);
  tracker.entered_at_ = SimDuration::seconds(reader.read<double>());
  tracker.consecutive_faults_ = reader.read<std::uint32_t>();
  tracker.consecutive_successes_ = reader.read<std::uint32_t>();
  tracker.probe_clean_ = reader.read<std::uint32_t>();
  tracker.quarantines_ = reader.read<std::uint64_t>();
  tracker.probes_ = reader.read<std::uint64_t>();
  const auto count = reader.read<std::uint64_t>();
  HDC_CHECK(count <= (1ULL << 20), "serialized transition log exceeds sanity bound");
  tracker.transitions_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Transition t;
    const auto from = reader.read<std::uint8_t>();
    const auto to = reader.read<std::uint8_t>();
    HDC_CHECK(from <= static_cast<std::uint8_t>(DeviceHealth::kProbing) &&
                  to <= static_cast<std::uint8_t>(DeviceHealth::kProbing),
              "serialized transition state out of range");
    t.from = static_cast<DeviceHealth>(from);
    t.to = static_cast<DeviceHealth>(to);
    t.at = SimDuration::seconds(reader.read<double>());
    tracker.transitions_.push_back(t);
  }
  return tracker;
}

}  // namespace hdc::runtime
