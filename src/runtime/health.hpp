#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_io.hpp"
#include "common/sim_time.hpp"

namespace hdc::runtime {

/// Where a served batch runs on the degradation ladder. Tier 0 is the full
/// TPU model; tier 1 is the reduced-dimension (LDC-style) model on the same
/// accelerator — HDC tolerates drastic dimension reduction with small
/// accuracy loss, which is what makes a cheaper *model* a principled
/// degraded mode; tier 2 is the host CPU scalar path (no device at all).
enum class ServeTier : std::uint8_t { kFull = 0, kReduced = 1, kHost = 2 };

const char* tier_name(ServeTier tier);

/// Lifecycle of a (simulated) accelerator as seen by the serving loop:
///
///   healthy -> degraded -> quarantined -> probing -> healthy
///
/// replacing the resilient executor's one-way circuit breaker with half-open
/// probing, so a device that recovers (e.g. a detach window ends) returns to
/// service instead of staying benched forever.
enum class DeviceHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
  kProbing = 3,
};

const char* health_name(DeviceHealth state);

/// Thresholds of the health state machine. All counters are *consecutive*
/// batch outcomes, so the machine is a deterministic function of the batch
/// fault sequence (never of wall-clock or monitor thresholds — health feeds
/// the monitor, not the other way around, preserving result-invariance).
struct HealthConfig {
  /// Consecutive faulty batches before a healthy device is degraded.
  std::uint32_t degrade_after_faults = 2;
  /// Consecutive faulty batches before the device is quarantined outright.
  /// A circuit-breaker trip quarantines immediately regardless of count.
  std::uint32_t quarantine_after_faults = 4;
  /// Consecutive clean batches for a degraded device to return to healthy.
  std::uint32_t recover_after_successes = 4;
  /// Simulated time a quarantined device sits out before a half-open probe.
  SimDuration probe_interval = SimDuration::millis(2);
  /// Consecutive clean probe batches to re-admit the device as healthy.
  std::uint32_t probe_successes = 2;

  void validate() const;
};

/// How the bounded admission queue sheds load when it is full.
enum class ShedPolicy : std::uint8_t {
  kRejectNewest = 0,  ///< arriving request is refused (queue keeps its order)
  kDropOldest = 1,    ///< oldest queued request is dropped to admit the new one
};

const char* shed_policy_name(ShedPolicy policy);
/// Parses "reject-newest" / "drop-oldest" (the CLI `--shed-policy` values).
ShedPolicy parse_shed_policy(const std::string& name);

/// Overload protection of the serve path: a bounded queue of pending chunks
/// with deterministic, simulated-time-priced load shedding and per-request
/// deadlines.
struct AdmissionConfig {
  /// Offered load as a multiple of the tier-0 (full TPU model) service rate.
  /// 0 = closed loop: each chunk arrives exactly when the previous one
  /// finished, so no queue ever builds (the legacy serve behaviour).
  double offered_load = 0.0;
  /// Pending chunks the queue holds before shedding kicks in.
  std::uint32_t queue_capacity = 4;
  ShedPolicy policy = ShedPolicy::kRejectNewest;
  /// Per-request completion budget, measured from a chunk's arrival. A chunk
  /// whose queue wait already exceeds the budget is expired unserved; the
  /// remaining budget propagates into the executor as the per-sample retry
  /// watchdog. Zero = no deadline.
  SimDuration deadline;
  /// Queue depth at which a *healthy* device pre-emptively serves the
  /// reduced-dimension tier to drain backlog faster.
  std::uint32_t degrade_backlog = 2;

  void validate() const;
};

/// Per-device health state machine driven by the resilient executor's fault
/// counters. Purely deterministic in simulated time; serializes into serve
/// checkpoints so a detach-and-restart resumes the exact same lifecycle.
class DeviceHealthTracker {
 public:
  explicit DeviceHealthTracker(HealthConfig config = {});

  const HealthConfig& config() const noexcept { return config_; }
  DeviceHealth state() const noexcept { return state_; }
  /// When the current state was entered (simulated time).
  SimDuration entered_at() const noexcept { return entered_at_; }

  struct Transition {
    DeviceHealth from = DeviceHealth::kHealthy;
    DeviceHealth to = DeviceHealth::kHealthy;
    SimDuration at;
  };
  const std::vector<Transition>& transitions() const noexcept { return transitions_; }
  std::uint64_t quarantines() const noexcept { return quarantines_; }
  std::uint64_t probes_attempted() const noexcept { return probes_; }

  /// Picks the ladder tier for a batch starting at `now` with
  /// `backlog_chunks` requests still queued behind it. A quarantined device
  /// whose probe interval elapsed transitions to probing here (the half-open
  /// edge); otherwise quarantine routes the batch to the host tier.
  ServeTier admit_tier(SimDuration now, std::size_t backlog_chunks,
                       std::uint32_t degrade_backlog);

  /// Feeds one device-batch outcome. `faulty` = the batch saw any retry,
  /// fallback sample, or fault; `circuit_opened` quarantines immediately.
  /// No-op while quarantined (host-served batches never touch the device).
  void on_batch(SimDuration at, bool faulty, bool circuit_opened);

  void serialize(ByteWriter& writer) const;
  static DeviceHealthTracker deserialize(ByteReader& reader, const HealthConfig& config);

 private:
  void enter(DeviceHealth to, SimDuration at);

  HealthConfig config_;
  DeviceHealth state_ = DeviceHealth::kHealthy;
  SimDuration entered_at_;
  std::uint32_t consecutive_faults_ = 0;
  std::uint32_t consecutive_successes_ = 0;
  std::uint32_t probe_clean_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t probes_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace hdc::runtime
