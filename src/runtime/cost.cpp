#include "runtime/cost.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "lite/builder.hpp"
#include "lite/quantize.hpp"
#include "tpu/compiler.hpp"

namespace hdc::runtime {

void WorkloadShape::validate() const {
  HDC_CHECK(train_samples > 0, "workload needs training samples");
  HDC_CHECK(features > 0 && classes >= 2 && dim > 0, "workload shape incomplete");
  HDC_CHECK(epochs > 0, "workload needs at least one iteration");
  HDC_CHECK(update_fraction >= 0.0 && update_fraction <= 1.0,
            "update fraction must lie in [0,1]");
}

void BaggingShape::validate() const {
  HDC_CHECK(num_models > 0 && sub_dim > 0 && epochs > 0, "bagging shape incomplete");
  HDC_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0,1]");
  HDC_CHECK(beta > 0.0 && beta <= 1.0, "beta must lie in (0,1]");
}

lite::LiteModel make_int8_chain_model(const std::string& name, std::uint32_t features,
                                      std::uint32_t dim,
                                      std::optional<std::uint32_t> classes) {
  HDC_CHECK(features > 0 && dim > 0, "chain model shape incomplete");
  const lite::Quantization nominal{1.0F / 128.0F, 0};

  lite::LiteModelBuilder builder(name);
  const std::uint32_t input = builder.add_activation("input", lite::DType::kFloat32, features);
  builder.set_input(input);

  const std::uint32_t input_q =
      builder.add_activation("input_q", lite::DType::kInt8, features, nominal);
  builder.add_op(lite::OpCode::kQuantize, {input}, {input_q});

  const std::uint32_t base_w = builder.add_weights_i8(
      "base/weights_q", tensor::MatrixI8(features, dim), nominal);
  const std::uint32_t hidden =
      builder.add_activation("hidden_q", lite::DType::kInt8, dim, nominal);
  builder.add_op(lite::OpCode::kFullyConnected, {input_q, base_w}, {hidden});

  std::uint32_t encoded =
      builder.add_activation("encoded_q", lite::DType::kInt8, dim, nominal);
  builder.add_op(lite::OpCode::kTanh, {hidden}, {encoded});

  if (classes.has_value()) {
    const std::uint32_t class_w = builder.add_weights_i8(
        "class/weights_q", tensor::MatrixI8(dim, *classes), nominal);
    const std::uint32_t logits =
        builder.add_activation("logits_q", lite::DType::kInt8, *classes, nominal);
    builder.add_op(lite::OpCode::kFullyConnected, {encoded, class_w}, {logits});
    const std::uint32_t cls = builder.add_activation("class", lite::DType::kInt32, 1);
    builder.add_op(lite::OpCode::kArgMax, {logits}, {cls});
    encoded = cls;
  }
  builder.set_output(encoded);
  return builder.finish();
}

CostModel::CostModel(platform::PlatformProfile host, tpu::SystolicConfig systolic,
                     tpu::UsbLinkConfig link, std::uint64_t sram_bytes)
    : host_(std::move(host)), systolic_(systolic), link_(link), sram_bytes_(sram_bytes) {
  host_.validate();
  systolic_.validate();
  link_.validate();
}

SimDuration CostModel::encode_cpu(std::uint64_t samples, std::uint32_t features,
                                  std::uint32_t dim,
                                  const platform::PlatformProfile& cpu) const {
  const double per_sample = static_cast<double>(features) * dim / cpu.mac_rate +
                            static_cast<double>(dim) / cpu.element_rate;  // tanh
  return SimDuration::seconds(per_sample * static_cast<double>(samples));
}

SimDuration CostModel::encode_tpu(std::uint64_t samples, std::uint32_t features,
                                  std::uint32_t dim) const {
  tpu::EdgeTpuDevice device(systolic_, link_, sram_bytes_);
  const tpu::EdgeTpuCompiler compiler(systolic_, sram_bytes_);
  const auto compiled =
      compiler.compile(make_int8_chain_model("encode_cost", features, dim));
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kTimingOnly;
  options.interactive = false;  // training encodes stream, pipelined
  auto stats = device.invoke_timing(compiled, samples, options, host_.host_cost_model());
  // The host dequantizes the int8 hypervectors it receives before the class
  // update (the update loop works on real values).
  const SimDuration dequant = SimDuration::seconds(
      static_cast<double>(samples) * dim / host_.element_rate);
  return stats.total() + dequant;
}

SimDuration CostModel::update_phase(std::uint64_t samples, std::uint32_t dim,
                                    std::uint32_t classes, std::uint32_t epochs,
                                    double update_fraction,
                                    const platform::PlatformProfile& cpu) const {
  // Per iteration: an associative search over every sample (N * d * k MACs,
  // the encoded-hypervector norm and the per-class cosine division),
  // refreshed class norms, and a bundling + detaching pass over the
  // mispredicted fraction.
  const double n = static_cast<double>(samples);
  const double similarity_macs = n * static_cast<double>(dim) * classes;
  const double encoded_norm_ops = n * static_cast<double>(dim);
  const double cosine_ops = n * static_cast<double>(classes);
  const double class_norm_ops = static_cast<double>(dim) * classes;
  const double update_ops = update_fraction * n * 2.0 * static_cast<double>(dim);
  const double per_epoch =
      similarity_macs / cpu.mac_rate +
      (encoded_norm_ops + cosine_ops + class_norm_ops + update_ops) / cpu.element_rate;
  return SimDuration::seconds(per_epoch * epochs);
}

TrainTimings CostModel::train_cpu(const WorkloadShape& shape,
                                  const platform::PlatformProfile& cpu) const {
  shape.validate();
  TrainTimings t;
  t.encode = encode_cpu(shape.train_samples, shape.features, shape.dim, cpu);
  t.update = update_phase(shape.train_samples, shape.dim, shape.classes, shape.epochs,
                          shape.update_fraction, cpu);
  // No accelerator models to generate on the pure-CPU path.
  return t;
}

InferTimings CostModel::infer_cpu(const WorkloadShape& shape,
                                  const platform::PlatformProfile& cpu) const {
  shape.validate();
  const double macs = static_cast<double>(shape.features) * shape.dim +
                      static_cast<double>(shape.dim) * shape.classes;
  const double elements = static_cast<double>(shape.dim) + shape.classes;  // tanh + argmax
  InferTimings t;
  t.per_sample = SimDuration::seconds(macs / cpu.mac_rate + elements / cpu.element_rate);
  t.total = t.per_sample * static_cast<double>(shape.test_samples);
  return t;
}

TrainTimings CostModel::train_tpu(const WorkloadShape& shape) const {
  shape.validate();
  TrainTimings t;
  t.encode = encode_tpu(shape.train_samples, shape.features, shape.dim);
  t.update = update_phase(shape.train_samples, shape.dim, shape.classes, shape.epochs,
                          shape.update_fraction, host_);

  const tpu::EdgeTpuCompiler compiler(systolic_, sram_bytes_);
  const auto encode_model =
      compiler.compile(make_int8_chain_model("encode_gen", shape.features, shape.dim));
  const auto infer_model = compiler.compile(
      make_int8_chain_model("infer_gen", shape.features, shape.dim, shape.classes));
  t.model_gen =
      encode_model.report.host_compile_time + infer_model.report.host_compile_time;
  return t;
}

InferTimings CostModel::infer_tpu(const WorkloadShape& shape) const {
  shape.validate();
  tpu::EdgeTpuDevice device(systolic_, link_, sram_bytes_);
  const tpu::EdgeTpuCompiler compiler(systolic_, sram_bytes_);
  const auto compiled = compiler.compile(
      make_int8_chain_model("infer_cost", shape.features, shape.dim, shape.classes));
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kTimingOnly;
  options.interactive = true;  // real-time, sample-at-a-time inference
  const auto per_sample = device.per_sample_cost(compiled, options, host_.host_cost_model());
  InferTimings t;
  t.per_sample = per_sample.total();
  t.total = t.per_sample * static_cast<double>(shape.test_samples);
  return t;
}

TrainTimings CostModel::train_tpu_bagging(const WorkloadShape& shape,
                                          const BaggingShape& bag) const {
  shape.validate();
  bag.validate();
  const auto subset = static_cast<std::uint64_t>(
      std::max<double>(1.0, bag.alpha * static_cast<double>(shape.train_samples)));

  TrainTimings t;
  const tpu::EdgeTpuCompiler compiler(systolic_, sram_bytes_);
  for (std::uint32_t m = 0; m < bag.num_models; ++m) {
    // Each sub-model has its own (narrow) encode model; feature sampling
    // zeroes base rows but the accelerator still computes dense tiles, so
    // beta does not shrink encode time (the paper's Fig.-8 observation).
    t.encode += encode_tpu(subset, shape.features, bag.sub_dim);
    t.update += update_phase(subset, bag.sub_dim, shape.classes, bag.epochs,
                             shape.update_fraction, host_);
    const auto encode_model = compiler.compile(make_int8_chain_model(
        "encode_gen_m" + std::to_string(m), shape.features, bag.sub_dim));
    t.model_gen += encode_model.report.host_compile_time;
  }

  // One stacked full-width inference model (paper Section III-B).
  const std::uint32_t full_dim = bag.sub_dim * bag.num_models;
  const auto stacked = compiler.compile(
      make_int8_chain_model("infer_stacked_gen", shape.features, full_dim, shape.classes));
  t.model_gen += stacked.report.host_compile_time;
  return t;
}

InferTimings CostModel::infer_tpu_stacked(const WorkloadShape& shape,
                                          const BaggingShape& bag) const {
  bag.validate();
  WorkloadShape stacked = shape;
  stacked.dim = bag.sub_dim * bag.num_models;
  return infer_tpu(stacked);
}

InferTimings CostModel::infer_tpu_serial_coresident(const WorkloadShape& shape,
                                                    const BaggingShape& bag) const {
  shape.validate();
  bag.validate();
  tpu::EdgeTpuDevice device(systolic_, link_, sram_bytes_);
  const tpu::EdgeTpuCompiler compiler(systolic_, sram_bytes_);
  const auto compiled = compiler.compile(make_int8_chain_model(
      "infer_coresident_cost", shape.features, bag.sub_dim, shape.classes));

  const std::uint64_t combined_bytes =
      static_cast<std::uint64_t>(compiled.report.weight_bytes) * bag.num_models;
  if (combined_bytes > sram_bytes_) {
    // Co-compilation cannot pin the ensemble; behaves like the swap path.
    return infer_tpu_serial(shape, bag);
  }

  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kTimingOnly;
  options.interactive = true;
  const auto per_invoke = device.per_sample_cost(compiled, options, host_.host_cost_model());
  const SimDuration aggregate = SimDuration::seconds(
      static_cast<double>(bag.num_models) * shape.classes / host_.element_rate);

  InferTimings t;
  t.per_sample = per_invoke.total() * static_cast<double>(bag.num_models) + aggregate;
  t.total = t.per_sample * static_cast<double>(shape.test_samples);
  return t;
}

InferTimings CostModel::infer_tpu_serial(const WorkloadShape& shape,
                                         const BaggingShape& bag) const {
  shape.validate();
  bag.validate();
  tpu::EdgeTpuDevice device(systolic_, link_, sram_bytes_);
  const tpu::EdgeTpuCompiler compiler(systolic_, sram_bytes_);
  const auto compiled = compiler.compile(make_int8_chain_model(
      "infer_serial_cost", shape.features, bag.sub_dim, shape.classes));
  tpu::InvokeOptions options;
  options.mode = tpu::ExecutionMode::kTimingOnly;
  options.interactive = true;

  const auto per_invoke = device.per_sample_cost(compiled, options, host_.host_cost_model());
  // Real-time sample-at-a-time consensus: every sample runs M sub-models and
  // pays a model swap (weight re-upload) per sub-model, plus the host-side
  // score aggregation.
  const SimDuration swap = device.link().transfer_time(compiled.report.weight_bytes);
  const SimDuration aggregate = SimDuration::seconds(
      static_cast<double>(bag.num_models) * shape.classes / host_.element_rate);

  InferTimings t;
  t.per_sample =
      (per_invoke.total() + swap) * static_cast<double>(bag.num_models) + aggregate;
  t.total = t.per_sample * static_cast<double>(shape.test_samples);
  return t;
}

}  // namespace hdc::runtime
