#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bagging.hpp"
#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "platform/cpu_executor.hpp"
#include "platform/profiles.hpp"
#include "lite/quantize.hpp"
#include "runtime/cost.hpp"
#include "runtime/health.hpp"
#include "runtime/report.hpp"
#include "runtime/resilient.hpp"
#include "tpu/compiler.hpp"
#include "tpu/device.hpp"
#include "tpu/faults.hpp"

namespace hdc::obs {
class TraceContext;
struct RequestTrace;
}  // namespace hdc::obs

namespace hdc::runtime {

/// Full system configuration: which host CPU drives the accelerator and how
/// the accelerator is built. Defaults model the paper's setup (i5-5250U-class
/// host + USB Edge TPU).
struct SystemConfig {
  platform::PlatformProfile host = platform::host_cpu_profile();
  tpu::SystolicConfig systolic;
  tpu::UsbLinkConfig link;
  std::uint64_t sram_bytes = 8ULL * 1024 * 1024;
  /// Training samples used as the representative dataset for post-training
  /// quantization calibration.
  std::uint32_t calibration_samples = 128;
  /// Post-training quantization options for every model the framework lowers
  /// (e.g. per-channel weights).
  lite::QuantizeOptions quantize;
};

/// The paper's framework (Fig. 1 / Fig. 3): HDC interpreted as a hyper-wide
/// NN, encoding and inference accelerated on the (simulated) Edge TPU,
/// class-hypervector updates on the host CPU, optionally with bagging.
///
/// All methods run *functionally* (real math, real accuracy, including int8
/// quantization effects on the accelerated paths) and report *simulated*
/// runtimes from the same cost machinery the analytic CostModel uses.
class CoDesignFramework {
 public:
  explicit CoDesignFramework(SystemConfig config = {});

  const SystemConfig& config() const noexcept { return config_; }
  const CostModel& cost_model() const noexcept { return cost_; }

  /// Attaches a span/metrics recorder to every subsequent train/infer call:
  /// the paper's Fig.-5/6 phases (`train.encode` / `train.update` /
  /// `train.model_gen`, transfer / device / host inference phases) land as
  /// spans keyed to simulated time, and summary gauges/counters land in the
  /// attached metrics registry. Null (the default) disables instrumentation;
  /// results and timings are bit-identical either way.
  void set_trace(obs::TraceContext* trace) noexcept { trace_ = trace; }
  obs::TraceContext* trace_context() const noexcept { return trace_; }

  struct TrainOutcome {
    core::TrainedClassifier classifier;  ///< float classifier (stacked when bagged)
    TrainTimings timings;
    std::vector<core::EpochStats> history;  ///< per-iteration accuracy (first member when bagged)
    double measured_update_fraction = 0.0;  ///< feeds full-scale analytic pricing
  };

  /// Baseline: everything (float) on the host CPU.
  TrainOutcome train_cpu(const data::Dataset& train, const core::HdConfig& cfg,
                         const data::Dataset* validation = nullptr) const;

  /// Co-design without bagging: training set encoded through the quantized
  /// encode model on the TPU, class update on the host.
  TrainOutcome train_tpu(const data::Dataset& train, const core::HdConfig& cfg,
                         const data::Dataset* validation = nullptr) const;

  /// Co-design with bagging (paper TPU_B): M narrow sub-models trained on
  /// bootstrap subsets, then stacked into one full-width classifier.
  TrainOutcome train_tpu_bagging(const data::Dataset& train,
                                 const core::BaggingConfig& cfg) const;

  struct InferOutcome {
    std::vector<std::uint32_t> predictions;
    double accuracy = 0.0;
    InferTimings timings;
    tpu::CompileReport compile_report;  ///< empty for the CPU path
  };

  /// Float inference on the host CPU.
  InferOutcome infer_cpu(const core::TrainedClassifier& classifier,
                         const data::Dataset& test) const;

  /// int8 inference through the full wide-NN model on the TPU (quantized
  /// against `representative` — typically the training set).
  InferOutcome infer_tpu(const core::TrainedClassifier& classifier,
                         const data::Dataset& test,
                         const data::Dataset& representative) const;

  /// A classifier lowered through the deployment pipeline: the float wide-NN
  /// model (the exact CPU-fallback model) plus its quantized, compiled
  /// accelerator image. The same lowering sequence `infer_tpu` /
  /// `infer_tpu_resilient` perform inline, exposed so a long-lived serving
  /// endpoint can lower once and re-deploy across model refreshes.
  struct LoweredModel {
    lite::LiteModel float_model;
    tpu::CompiledModel compiled;
  };

  /// Lowers `classifier` for deployment: wide-NN graph -> float model ->
  /// int8 quantization against `representative` -> accelerator compile.
  LoweredModel lower_classifier(const core::TrainedClassifier& classifier,
                                const data::Dataset& representative,
                                const std::string& name = "hdc_inference") const;

  /// Fault-tolerant TPU inference: same model pipeline as `infer_tpu`, but
  /// the device draws faults from `faults` and the batch is driven by a
  /// `ResilientExecutor` (bounded retry, exponential backoff, CPU fallback).
  /// With a fault-free profile, predictions and timings are identical to
  /// `infer_tpu`. `report` (optional) receives the fault/fallback breakdown;
  /// `timings.total` includes retry, backoff, re-upload and fallback time.
  InferOutcome infer_tpu_resilient(const core::TrainedClassifier& classifier,
                                   const data::Dataset& test,
                                   const data::Dataset& representative,
                                   const tpu::FaultProfile& faults,
                                   const RetryPolicy& policy = {},
                                   ResilienceReport* report = nullptr) const;

 private:
  tensor::MatrixF encode_on_tpu(const core::Encoder& encoder,
                                const tensor::MatrixF& samples,
                                const tensor::MatrixF& representative,
                                SimDuration* encode_time,
                                SimDuration* model_gen_time) const;
  tensor::MatrixF representative_rows(const data::Dataset& dataset) const;
  void publish_train_metrics(const TrainTimings& timings) const;
  void publish_infer_metrics(const InferTimings& timings, double accuracy,
                             std::size_t samples) const;

  SystemConfig config_;
  CostModel cost_;
  obs::TraceContext* trace_ = nullptr;
};

/// A long-lived serving endpoint: one persistent accelerator device shared
/// across every chunk of a serving session, with a *tiered* model ladder
/// deployed on it.
///
///   kFull     full-dimension model on the accelerator
///   kReduced  reduced-dimension (LDC-style) model on the accelerator
///   kHost     reduced float model on the host CPU (device not touched)
///
/// Keeping the device alive across chunks is what makes device health
/// meaningful: detach schedules, SRAM state and the fault injector's RNG
/// stream persist, so a quarantined device really is the *same* device the
/// probe later re-tries. Model deploys/swaps ride the one-time-upload
/// convention of `infer_tpu` — never charged to serving time — so tier
/// switches change *which* model runs, not the cost of loading it.
class ServingEndpoint {
 public:
  ServingEndpoint(const CoDesignFramework& framework, const tpu::FaultProfile& faults,
                  RetryPolicy policy);

  /// Lowers and installs the model for `tier` (kHost shares kReduced's
  /// lowered model and needs no deploy). Upload is uncharged by convention.
  void deploy(ServeTier tier, const core::TrainedClassifier& classifier,
              const data::Dataset& representative);

  bool deployed(ServeTier tier) const noexcept;

  struct BatchOutcome {
    std::vector<std::uint32_t> predictions;
    SimDuration total;  ///< simulated service time for the batch
    ResilienceReport report;
  };

  /// Serves one chunk on `tier` starting at simulated time `start` (the
  /// device clock is synced forward to it — idle gaps between chunks are
  /// real time the detach schedule sees). `sample_deadline` bounds each
  /// sample's retry loop (zero = unbounded); host-tier batches never touch
  /// the device and cannot fault. When `request` is non-null the batch's
  /// stage spans (transfer / MXU / backoff / host) are appended to its
  /// causal chain — purely observational, never feeds back into timings.
  BatchOutcome infer(ServeTier tier, const tensor::MatrixF& inputs, SimDuration start,
                     SimDuration sample_deadline, obs::RequestTrace* request = nullptr);

  /// Nominal fault-free per-sample service time for a tier (the admission
  /// deadline check prices queued work with this).
  SimDuration nominal_per_sample(ServeTier tier) const;

  tpu::EdgeTpuDevice& device() noexcept { return device_; }
  const tpu::EdgeTpuDevice& device() const noexcept { return device_; }

 private:
  const CoDesignFramework& framework_;
  RetryPolicy policy_;
  tpu::EdgeTpuDevice device_;
  platform::CpuExecutor cpu_;
  /// Lowered models for the device tiers (kHost reuses kReduced's float
  /// model on the CPU).
  std::array<std::optional<CoDesignFramework::LoweredModel>, 2> tiers_;
};

}  // namespace hdc::runtime
