#pragma once

#include <string>
#include <vector>

namespace hdc::runtime {

/// Column-oriented experiment results: benches build one per table/figure
/// and render either an aligned text table (stdout) or CSV (for plotting
/// scripts). Deliberately string-typed — the harness decides formatting at
/// insert time, and reproduction artifacts should be eyeball-able.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  std::size_t num_columns() const noexcept { return columns_.size(); }
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Adds a row (must match the column count).
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows: doubles are rendered with
  /// `precision` digits after the point.
  static std::string cell(double value, int precision = 3);

  const std::vector<std::string>& columns() const noexcept { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept { return rows_; }

  /// Fixed-width text rendering with a header rule.
  std::string to_text() const;

  /// RFC-4180-ish CSV (cells containing commas/quotes/newlines get quoted).
  std::string to_csv() const;

  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hdc::runtime
