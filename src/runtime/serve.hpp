#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "data/stream.hpp"
#include "core/online.hpp"
#include "obs/monitor.hpp"
#include "runtime/framework.hpp"
#include "runtime/resilient.hpp"
#include "tpu/faults.hpp"

namespace hdc::runtime {

/// Configuration of a live serving session: a `data::DriftStream` pumped
/// chunk by chunk through the fault-tolerant TPU inference path with
/// prequential evaluation, optional host-side online updates, and a
/// `obs::ServingMonitor` watching every served sample.
struct ServeConfig {
  data::StreamConfig stream;     ///< task shape, chunking, drift schedule
  core::OnlineConfig learner;    ///< host learner (dim/seed/lr/similarity)

  /// Chunks consumed to train the learner before serving starts. The first
  /// warmup chunk doubles as the quantization-calibration representative
  /// set. Note: the drift schedule counts *all* chunks the stream emits,
  /// warmup included.
  std::uint32_t warmup_chunks = 4;
  std::uint32_t serve_chunks = 32;

  /// Host-side OnlineLearner updates on the served (prequential) labels.
  bool online_updates = false;
  /// With online updates: refreeze the learner into the deployed classifier
  /// every N served chunks (0 = never refresh; serve the warmup model).
  std::uint32_t model_refresh_chunks = 4;

  tpu::FaultProfile faults;  ///< default: fault-free device
  RetryPolicy retry;

  /// Monitor thresholds/window. `monitor.num_classes` is filled from the
  /// stream spec; `monitor.window.span == 0` auto-sizes the window to 4x the
  /// first served chunk's simulated duration, and `monitor.slo_latency == 0`
  /// auto-targets 1.5x the first chunk's per-sample latency — both derived
  /// from simulated values, so they stay deterministic.
  obs::MonitorConfig monitor;

  // ---- exporters (strictly write-only; never feed back into serving) ----
  /// Directory for periodic `monitor_snapshot_NNNN.json` +
  /// `monitor_snapshot_final.json` (hdc-monitor-v1). Empty = no snapshots.
  std::string snapshot_dir;
  /// Snapshot every N served chunks (0 = final snapshot only).
  std::uint32_t snapshot_every_chunks = 0;
  /// Prometheus text-exposition file, rewritten at every snapshot interval
  /// and at the end of the run. Empty = disabled.
  std::string prometheus_path;

  void validate() const;
};

/// What one serving session produced. `predictions` and `t_end` depend only
/// on the stream/learner/fault configuration — never on monitor thresholds,
/// window sizing, or exporters (result-invariance, pinned by tests).
struct ServeResult {
  /// Per-chunk digest, in serve order.
  struct ChunkStats {
    std::uint32_t index = 0;        ///< served-chunk index (warmup not counted)
    SimDuration t_end;              ///< simulated clock after the chunk (incl. updates)
    std::uint64_t samples = 0;
    double chunk_accuracy = 0.0;    ///< TPU predictions vs labels, this chunk
    double windowed_accuracy = 0.0;
    double drift_score = 0.0;
    std::uint64_t fallback_samples = 0;
    bool circuit_opened = false;
  };

  std::vector<std::uint32_t> predictions;  ///< all served TPU predictions, in order
  std::vector<ChunkStats> chunks;
  obs::MonitorSnapshot final_snapshot;
  std::vector<obs::AlarmEvent> events;     ///< every alarm edge, in order

  SimDuration t_end;                       ///< final simulated clock
  std::uint64_t samples_served = 0;
  double lifetime_accuracy = 0.0;
  double warmup_accuracy = 0.0;            ///< prequential accuracy of the warmup pass
  std::uint32_t snapshots_written = 0;
};

/// Runs the serving session to completion. Deterministic: a fixed
/// `ServeConfig` (and `framework` system config) reproduces bit-identical
/// predictions, simulated timings, alarm edges and snapshot bytes.
ServeResult serve(const CoDesignFramework& framework, const ServeConfig& config);

}  // namespace hdc::runtime
