#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "data/stream.hpp"
#include "core/online.hpp"
#include "obs/energy.hpp"
#include "obs/model_stats.hpp"
#include "obs/monitor.hpp"
#include "runtime/framework.hpp"
#include "runtime/health.hpp"
#include "runtime/resilient.hpp"
#include "tpu/faults.hpp"

namespace hdc::runtime {

/// How the fleet router picks a device for an arriving tenant request.
enum class PlacementPolicy : std::uint8_t {
  /// Route to the device whose on-chip SRAM already holds the tenant's model
  /// (the parameter cache is single-active-model, so residency is tenant
  /// stickiness); fall back to least-loaded when no device has it warm or
  /// the warm device's queue is full. Maximizes cache hit rate under skew.
  kCacheAware = 0,
  /// Request index modulo device count — the cache-oblivious baseline.
  kRoundRobin = 1,
  /// Fewest queued samples (ties: earlier-free device, then lowest index).
  kLeastLoaded = 2,
};

const char* placement_name(PlacementPolicy policy);
/// Parses "cache-aware" / "round-robin" / "least-loaded" (CLI `--placement`).
PlacementPolicy parse_placement_policy(const std::string& name);

/// Multi-device fleet serving: N simulated Edge TPUs behind one router, a
/// multi-tenant request stream, dynamic micro-batching and cache-aware
/// placement. Consumed by `serve_fleet` (runtime/router.hpp); plain `serve`
/// ignores it.
struct FleetConfig {
  std::uint32_t num_devices = 1;
  std::uint32_t num_tenants = 1;
  /// Zipf exponent of tenant popularity (weight of tenant k ∝ (k+1)^-skew);
  /// 0 = uniform. Skewed traffic is what makes cache-aware placement beat
  /// round-robin on parameter-cache hit rate.
  double tenant_skew = 0.0;
  /// Micro-batch cap: queued same-tenant chunks coalesced into one device
  /// invocation (1 = unbatched FCFS). Batched invocations stream through the
  /// pipelined path, amortizing the per-invoke USB overhead.
  std::uint32_t batch_max_chunks = 1;
  /// Age bound: a head-of-queue request is dispatched no later than this
  /// long after its arrival even if the batch is not full, bounding the
  /// batching hold under light load.
  SimDuration batch_max_age = SimDuration::micros(200);
  PlacementPolicy placement = PlacementPolicy::kCacheAware;
  /// Seed of the arrival tenant sequence (independent of stream/model seeds).
  std::uint64_t seed = 0xF1EE7D01ULL;

  void validate() const;
};

/// Configuration of a live serving session: a `data::DriftStream` pumped
/// chunk by chunk through a persistent fault-tolerant accelerator endpoint
/// with prequential evaluation, optional host-side online updates, and a
/// `obs::ServingMonitor` watching every served sample.
///
/// Overload protection: chunks arrive on an open-loop schedule set by
/// `admission.offered_load`, wait in a bounded queue (shedding when full),
/// carry per-request deadlines, and are served on a tiered degradation
/// ladder (full TPU model / reduced-dimension TPU model / host CPU) chosen
/// by the device health state machine and the backlog.
struct ServeConfig {
  data::StreamConfig stream;     ///< task shape, chunking, drift schedule
  core::OnlineConfig learner;    ///< host learner (dim/seed/lr/similarity)

  /// Chunks consumed to train the learner before serving starts. The first
  /// warmup chunk doubles as the quantization-calibration representative
  /// set. Note: the drift schedule counts *all* chunks the stream emits,
  /// warmup included.
  std::uint32_t warmup_chunks = 4;
  std::uint32_t serve_chunks = 32;

  /// Host-side OnlineLearner updates on the served (prequential) labels.
  bool online_updates = false;
  /// With online updates: refreeze the learner into the deployed classifier
  /// every N served chunks (0 = never refresh; serve the warmup model).
  std::uint32_t model_refresh_chunks = 4;

  tpu::FaultProfile faults;  ///< default: fault-free device
  RetryPolicy retry;

  /// Overload protection: arrival rate, queue bound, shed policy, deadline.
  /// The default (offered_load = 0) is the closed loop: each chunk arrives
  /// exactly when the previous one finished, no queue builds, nothing is
  /// shed — bit-identical to serving without admission control.
  AdmissionConfig admission;
  /// Device health state machine thresholds (degrade / quarantine / probe).
  HealthConfig health;
  /// Multi-device fleet shape (devices, tenants, batching, placement). Only
  /// `serve_fleet` reads it; single-device `serve` ignores it entirely.
  FleetConfig fleet;
  /// Dimension of the reduced-tier (LDC-style) fallback model trained next
  /// to the full learner during warmup. 0 = auto: max(64, learner.dim / 8).
  std::uint32_t reduced_dim = 0;

  // ---- checkpoint / restore ------------------------------------------------
  /// Binary serve checkpoint ("HDSV"): models, online-learner counters,
  /// health state, admission queue and fault-injector RNG. Written every
  /// `checkpoint_every_chunks` served chunks (latest-wins at this path,
  /// plus a numbered `<path>.NNNN` history copy per interval) and at the
  /// end of the run. Empty = no checkpoints.
  std::string checkpoint_path;
  std::uint32_t checkpoint_every_chunks = 0;
  /// Resume a previous session from this checkpoint: the stream fast-forwards
  /// deterministically and serving continues mid-stream, byte-identical to a
  /// run that was never interrupted. Empty = start fresh.
  std::string resume_from;

  /// Monitor thresholds/window. `monitor.num_classes` is filled from the
  /// stream spec; `monitor.window.span == 0` auto-sizes the window to 4x the
  /// first served chunk's simulated duration, and `monitor.slo_latency == 0`
  /// auto-targets 1.5x the first chunk's per-sample latency — both derived
  /// from simulated values, so they stay deterministic.
  obs::MonitorConfig monitor;

  /// Model-quality monitor thresholds/bins (obs/model_stats.hpp). The serve
  /// layer fills `num_classes` from the stream spec, `dim` from the learner
  /// and `window` from the resolved monitor window; only the tunables
  /// (alarm thresholds, bin counts) are read from here.
  obs::ModelStatsConfig model_stats;

  /// Energy accountant power profile / alarm threshold (obs/energy.hpp). The
  /// serve layer fills `window` from the resolved monitor window; only the
  /// tunables (profile watts, `alarm_joules_per_inference`, `min_samples`)
  /// are read from here.
  obs::EnergyConfig energy;

  // ---- exporters (strictly write-only; never feed back into serving) ----
  /// Directory for periodic `monitor_snapshot_NNNN.json` +
  /// `monitor_snapshot_final.json` (hdc-monitor-v1). Empty = no snapshots.
  std::string snapshot_dir;
  /// Snapshot every N served chunks (0 = final snapshot only).
  std::uint32_t snapshot_every_chunks = 0;
  /// Prometheus text-exposition file, rewritten at every snapshot interval
  /// and at the end of the run. Empty = disabled.
  std::string prometheus_path;

  // ---- per-request tracing (strictly observational, like the monitor) ----
  /// Bounds for tail-based exemplar capture: full span chains are kept only
  /// for requests that are shed, expired, served off the full tier, or land
  /// at/above the windowed p99 — under this hard memory bound. Not part of
  /// the checkpoint fingerprint (exemplars restart cold on resume, like the
  /// monitor).
  obs::ExemplarConfig exemplars;
  /// Retained exemplar chains as `hdc-request-trace-v1` JSONL. Empty = write
  /// `<snapshot_dir>/exemplars.jsonl` when a snapshot dir is set, else skip.
  std::string exemplar_path;

  /// Effective reduced-tier dimension after the auto rule.
  std::uint32_t effective_reduced_dim() const;

  void validate() const;
};

/// What one serving session produced. `predictions` and `t_end` depend only
/// on the stream/learner/fault/admission configuration — never on monitor
/// thresholds, window sizing, or exporters (result-invariance, pinned by
/// tests).
struct ServeResult {
  /// Per-chunk digest, in serve order. Shed and expired chunks do not get an
  /// entry (they were never served); `index` is the offered-chunk index, so
  /// gaps in it are exactly the dropped chunks.
  struct ChunkStats {
    std::uint32_t index = 0;        ///< offered-chunk index (warmup not counted)
    SimDuration t_end;              ///< simulated clock after the chunk (incl. updates)
    std::uint64_t samples = 0;
    double chunk_accuracy = 0.0;    ///< served predictions vs labels, this chunk
    double windowed_accuracy = 0.0;
    double drift_score = 0.0;
    std::uint64_t fallback_samples = 0;
    bool circuit_opened = false;
    ServeTier tier = ServeTier::kFull;  ///< ladder tier the chunk ran on
    SimDuration queue_wait;             ///< admission-queue wait before service
    DeviceHealth health = DeviceHealth::kHealthy;  ///< device state after the chunk
  };

  /// Per-tier prequential telemetry (samples, errors, service time).
  struct TierStats {
    std::uint64_t samples = 0;
    std::uint64_t errors = 0;
    SimDuration service_time;
    double accuracy() const {
      return samples == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(errors) / static_cast<double>(samples);
    }
  };

  std::vector<std::uint32_t> predictions;  ///< all served predictions, in order
  std::vector<ChunkStats> chunks;
  obs::MonitorSnapshot final_snapshot;
  std::vector<obs::AlarmEvent> events;     ///< every alarm edge, in order
  /// Final model-quality view (confusion, calibration, dimension
  /// discriminability) and the model alarm edges, kept separate from the
  /// serving-monitor `events` so existing consumers see an unchanged stream.
  obs::ModelStatsSnapshot final_model;
  std::vector<obs::AlarmEvent> model_events;
  /// Final energy view (stage/component/outcome picojoule ledgers, windowed
  /// joules-per-inference, watts EWMA) and the energy alarm edges. Exact
  /// conservation contract: stage and component ledgers sum to `total_pj`,
  /// served + shed + expired == total, and re-pricing each `requests` entry's
  /// attribution under `config.energy.profile` and summing the integer atoms
  /// reproduces `final_energy.stage_pj` bit-exactly on fresh runs (pricing
  /// happens per request, so summing *durations* first would round
  /// differently; on resume `requests` restarts cold while the ledgers cover
  /// the whole session).
  obs::EnergySnapshot final_energy;
  std::vector<obs::AlarmEvent> energy_events;

  SimDuration t_end;                       ///< final simulated clock
  std::uint64_t samples_served = 0;
  double lifetime_accuracy = 0.0;
  double warmup_accuracy = 0.0;            ///< prequential accuracy of the warmup pass
  std::uint32_t snapshots_written = 0;

  // ---- overload / degradation telemetry -----------------------------------
  std::array<TierStats, 3> tiers{};        ///< indexed by ServeTier
  std::uint64_t shed_samples = 0;          ///< dropped by the admission queue
  std::uint64_t expired_samples = 0;       ///< deadline exceeded before service
  std::uint64_t degraded_samples = 0;      ///< served on tier > kFull
  std::uint32_t shed_chunks = 0;
  std::uint32_t expired_chunks = 0;
  DeviceHealth final_health = DeviceHealth::kHealthy;
  std::vector<DeviceHealthTracker::Transition> health_transitions;
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint32_t checkpoints_written = 0;

  // ---- per-request causal tracing & latency attribution -------------------
  /// Every offered request's causal chain (served, shed and expired alike),
  /// in offered order. On resume this holds only the post-resume requests
  /// (like the monitor, request records restart cold); the attribution
  /// accumulators below are checkpointed and cover the whole session.
  std::vector<obs::RequestTrace> requests;
  /// Stage-grouped durations summed over the whole session (checkpointed).
  obs::RequestAttribution attribution_total;
  std::uint64_t requests_traced = 0;
  /// Retained tail-based exemplars, bounded by `ServeConfig::exemplars`.
  std::vector<obs::RequestExemplar> exemplar_records;
  std::size_t exemplar_bytes = 0;       ///< retained-chain footprint at the end
  std::size_t exemplar_bytes_peak = 0;  ///< peak footprint (never exceeds the bound)
  std::uint64_t exemplars_evicted = 0;
  /// TraceContext accounting when the framework has a tracer attached
  /// (`--trace`): events recorded / dropped at the event cap.
  std::size_t trace_events = 0;
  std::size_t trace_dropped = 0;
};

/// Runs the serving session to completion. Deterministic: a fixed
/// `ServeConfig` (and `framework` system config) reproduces bit-identical
/// predictions, simulated timings, health transitions, alarm edges and
/// snapshot/checkpoint bytes. Resuming from a mid-stream checkpoint yields
/// the same bytes as the uninterrupted run.
ServeResult serve(const CoDesignFramework& framework, const ServeConfig& config);

/// Reads the model-quality section out of an HDSV checkpoint without the
/// original `ServeConfig` (magic/version/CRC still verified; the config
/// fingerprint is skipped instead of matched). Returns a deterministic
/// `{"schema":"hdc-modelstats-v1",...}` JSON document with the embedded
/// `model` object at the checkpoint's simulated time — what `hdc_modelq`
/// and `hdc model inspect` consume. Throws `hdc::Error` if the checkpoint
/// predates model stats (HDSV < 4) or carries none.
std::string checkpoint_model_stats_json(const std::string& path);

/// Reads the energy section out of an HDSV checkpoint without the original
/// `ServeConfig` (magic/version/CRC still verified). Returns a deterministic
/// `{"schema":"hdc-energystats-v1",...}` JSON document with the embedded
/// `energy` object at the checkpoint's simulated time — what `hdc_energyq`
/// and `hdc energy inspect` consume. Throws `hdc::Error` if the checkpoint
/// predates energy accounting (HDSV < 5) or carries none.
std::string checkpoint_energy_json(const std::string& path);

}  // namespace hdc::runtime
