#include "runtime/autotune.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"

namespace hdc::runtime {

void AutotuneSpace::validate() const {
  HDC_CHECK(!num_models.empty() && !epochs.empty() && !alphas.empty(),
            "autotune space must not be empty along any axis");
  for (const double alpha : alphas) {
    HDC_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha grid values must lie in (0,1]");
  }
}

BaggingAutotuner::BaggingAutotuner(const CoDesignFramework& framework,
                                   WorkloadShape full_scale)
    : framework_(framework), full_scale_(std::move(full_scale)) {
  full_scale_.validate();
}

AutotuneResult BaggingAutotuner::search(const data::Dataset& train,
                                        const data::Dataset& holdout,
                                        const AutotuneSpace& space,
                                        const core::HdConfig& base,
                                        double accuracy_margin) const {
  space.validate();
  base.validate();
  HDC_CHECK(accuracy_margin >= 0.0, "accuracy margin must be non-negative");

  AutotuneResult result;
  result.all.reserve(space.size());

  for (const std::uint32_t models : space.num_models) {
    for (const std::uint32_t iters : space.epochs) {
      for (const double alpha : space.alphas) {
        core::BaggingConfig config;
        config.num_models = models;
        config.epochs = iters;
        config.base = base;
        config.bootstrap.dataset_ratio = alpha;

        const auto trained = framework_.train_tpu_bagging(train, config);
        const double accuracy =
            framework_.infer_cpu(trained.classifier, holdout).accuracy;

        BaggingShape shape;
        shape.num_models = models;
        shape.sub_dim = std::max<std::uint32_t>(1, full_scale_.dim / models);
        shape.epochs = iters;
        shape.alpha = alpha;
        const SimDuration projected =
            framework_.cost_model().train_tpu_bagging(full_scale_, shape).total();

        result.all.push_back(AutotuneCandidate{config, accuracy, projected});
        result.best_accuracy_seen = std::max(result.best_accuracy_seen, accuracy);
        HDC_LOG_DEBUG << "autotune M=" << models << " I=" << iters << " a=" << alpha
                      << " acc=" << accuracy << " t=" << projected.to_string();
      }
    }
  }

  // Fastest candidate within the accuracy margin of the best seen.
  const AutotuneCandidate* best = nullptr;
  for (const auto& candidate : result.all) {
    if (candidate.accuracy + accuracy_margin < result.best_accuracy_seen) {
      continue;
    }
    if (best == nullptr || candidate.projected_train_time < best->projected_train_time) {
      best = &candidate;
    }
  }
  HDC_CHECK(best != nullptr, "autotune search produced no viable candidate");
  result.best = *best;
  return result;
}

}  // namespace hdc::runtime
