#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace hdc::obs {

double DurationHistogram::bucket_upper_seconds(std::size_t i) {
  return 1e-9 * std::pow(10.0, static_cast<double>(i));
}

void DurationHistogram::observe(SimDuration value, std::uint64_t count) {
  if (count == 0) {
    return;
  }
  std::size_t bucket = kFiniteBuckets;  // overflow unless a bound matches
  for (std::size_t i = 0; i < kFiniteBuckets; ++i) {
    if (value.to_seconds() <= bucket_upper_seconds(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

SimDuration DurationHistogram::mean() const {
  if (count_ == 0) {
    return SimDuration();
  }
  return sum_ * (1.0 / static_cast<double>(count_));
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

DurationHistogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), DurationHistogram{}).first;
  }
  return it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, name);
    out.push_back(':');
    detail::append_json_number(out, gauge.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count());
    out += ",\"sum_s\":";
    detail::append_json_number(out, hist.sum().to_seconds());
    out += ",\"min_s\":";
    detail::append_json_number(out, hist.min().to_seconds());
    out += ",\"max_s\":";
    detail::append_json_number(out, hist.max().to_seconds());
    out += ",\"mean_s\":";
    detail::append_json_number(out, hist.mean().to_seconds());
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < DurationHistogram::kBuckets; ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      out += "{\"le_s\":";
      if (i < DurationHistogram::kFiniteBuckets) {
        detail::append_json_number(out, DurationHistogram::bucket_upper_seconds(i));
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":";
      out += std::to_string(hist.bucket_count(i));
      out.push_back('}');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_table() const {
  std::size_t name_width = 6;  // "metric"
  const auto widen = [&name_width](const auto& map) {
    for (const auto& [name, unused] : map) {
      (void)unused;
      name_width = std::max(name_width, name.size());
    }
  };
  widen(counters_);
  widen(gauges_);
  widen(histograms_);

  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %-9s  %s\n", static_cast<int>(name_width),
                "metric", "type", "value");
  out += line;
  out.append(name_width + 2 + 9 + 2 + 48, '-');
  out.push_back('\n');

  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-*s  %-9s  %llu\n",
                  static_cast<int>(name_width), name.c_str(), "counter",
                  static_cast<unsigned long long>(counter.value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%-*s  %-9s  %.6g\n",
                  static_cast<int>(name_width), name.c_str(), "gauge", gauge.value());
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%-*s  %-9s  n=%llu sum=%s mean=%s min=%s max=%s\n",
                  static_cast<int>(name_width), name.c_str(), "histogram",
                  static_cast<unsigned long long>(hist.count()),
                  hist.sum().to_string().c_str(), hist.mean().to_string().c_str(),
                  hist.min().to_string().c_str(), hist.max().to_string().c_str());
    out += line;
  }
  return out;
}

}  // namespace hdc::obs
