#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace hdc::obs {

double DurationHistogram::bucket_upper_seconds(std::size_t i) {
  return 1e-9 * std::pow(10.0, static_cast<double>(i));
}

void DurationHistogram::observe(SimDuration value, std::uint64_t count) {
  if (count == 0) {
    return;
  }
  std::size_t bucket = kFiniteBuckets;  // overflow unless a bound matches
  for (std::size_t i = 0; i < kFiniteBuckets; ++i) {
    if (value.to_seconds() <= bucket_upper_seconds(i)) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

SimDuration DurationHistogram::mean() const {
  if (count_ == 0) {
    return SimDuration();
  }
  return sum_ * (1.0 / static_cast<double>(count_));
}

SimDuration DurationHistogram::quantile(double q) const {
  if (count_ == 0) {
    return SimDuration();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket == 0.0) {
      continue;
    }
    if (cumulative + in_bucket >= target) {
      // The overflow bucket has no finite upper bound; the observed max is
      // the tightest statement we can make about anything landing there.
      if (i >= kFiniteBuckets) {
        return max_;
      }
      const double lower = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
      const double upper = bucket_upper_seconds(i);
      const double fraction = (target - cumulative) / in_bucket;
      const double value = lower + fraction * (upper - lower);
      return std::clamp(SimDuration::seconds(value), min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

DurationHistogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), DurationHistogram{}).first;
  }
  return it->second;
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, name);
    out += ":{\"value\":";
    detail::append_json_number(out, gauge.value());
    out += ",\"max\":";
    detail::append_json_number(out, gauge.max());
    out.push_back('}');
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, name);
    out += ":{\"count\":";
    out += std::to_string(hist.count());
    out += ",\"sum_s\":";
    detail::append_json_number(out, hist.sum().to_seconds());
    // With zero observations min/max/mean/quantiles are undefined, not 0 s;
    // export null so consumers can't mistake defaults for measurements.
    const auto append_stat = [&out, &hist](const char* key, SimDuration value) {
      out.push_back(',');
      out.push_back('"');
      out += key;
      out += "\":";
      if (hist.count() == 0) {
        out += "null";
      } else {
        detail::append_json_number(out, value.to_seconds());
      }
    };
    append_stat("min_s", hist.min());
    append_stat("max_s", hist.max());
    append_stat("mean_s", hist.mean());
    append_stat("p50_s", hist.quantile(0.50));
    append_stat("p95_s", hist.quantile(0.95));
    append_stat("p99_s", hist.quantile(0.99));
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < DurationHistogram::kBuckets; ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      out += "{\"le_s\":";
      if (i < DurationHistogram::kFiniteBuckets) {
        detail::append_json_number(out, DurationHistogram::bucket_upper_seconds(i));
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":";
      out += std::to_string(hist.bucket_count(i));
      out.push_back('}');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_table() const {
  std::size_t name_width = 6;  // "metric"
  const auto widen = [&name_width](const auto& map) {
    for (const auto& [name, unused] : map) {
      (void)unused;
      name_width = std::max(name_width, name.size());
    }
  };
  widen(counters_);
  widen(gauges_);
  widen(histograms_);

  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %-9s  %s\n", static_cast<int>(name_width),
                "metric", "type", "value");
  out += line;
  out.append(name_width + 2 + 9 + 2 + 48, '-');
  out.push_back('\n');

  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%-*s  %-9s  %llu\n",
                  static_cast<int>(name_width), name.c_str(), "counter",
                  static_cast<unsigned long long>(counter.value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "%-*s  %-9s  %.6g (max %.6g)\n",
                  static_cast<int>(name_width), name.c_str(), "gauge", gauge.value(),
                  gauge.max());
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    if (hist.count() == 0) {
      std::snprintf(line, sizeof(line), "%-*s  %-9s  n=0\n",
                    static_cast<int>(name_width), name.c_str(), "histogram");
    } else {
      std::snprintf(line, sizeof(line),
                    "%-*s  %-9s  n=%llu sum=%s mean=%s min=%s max=%s p50=%s p95=%s "
                    "p99=%s\n",
                    static_cast<int>(name_width), name.c_str(), "histogram",
                    static_cast<unsigned long long>(hist.count()),
                    hist.sum().to_string().c_str(), hist.mean().to_string().c_str(),
                    hist.min().to_string().c_str(), hist.max().to_string().c_str(),
                    hist.quantile(0.50).to_string().c_str(),
                    hist.quantile(0.95).to_string().c_str(),
                    hist.quantile(0.99).to_string().c_str());
    }
    out += line;
  }
  return out;
}

}  // namespace hdc::obs
