#include "obs/profile.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "obs/energy.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hdc::obs {

namespace {

std::uint64_t counter_or_zero(const MetricsRegistry& metrics, std::string_view name) {
  const auto& counters = metrics.counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

double gauge_value(const MetricsRegistry& metrics, std::string_view name) {
  const auto& gauges = metrics.gauges();
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.value();
}

double gauge_max(const MetricsRegistry& metrics, std::string_view name) {
  const auto& gauges = metrics.gauges();
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second.max();
}

double ratio(double numerator, double denominator) {
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

}  // namespace

ProfileReport compute_profile(const TraceContext& trace, const MetricsRegistry& metrics,
                              const parallel::PoolStats* pool, std::size_t pool_lanes) {
  ProfileReport report;
  report.trace_events = trace.size();
  report.trace_dropped = trace.dropped();

  // Per-track busy time = summed span durations; the interval is the extent
  // of the whole recording (span_at events may end past the cursor, so take
  // the max of both). Executor/Trainer tracks hold *envelope* spans that
  // enclose the component spans, so they are never counted as busy time.
  std::array<SimDuration, kNumTracks> busy{};
  SimDuration extent = trace.now();
  for (const TraceEvent& event : trace.events()) {
    if (event.kind != TraceEvent::Kind::kSpan) {
      continue;
    }
    extent = std::max(extent, event.start + event.duration);
    busy[static_cast<std::size_t>(event.track)] += event.duration;
  }
  report.interval = extent;
  const double interval_s = report.interval.to_seconds();

  // ---- MXU ----
  report.mxu_busy = busy[static_cast<std::size_t>(Track::kDevice)];
  report.mxu_occupancy = ratio(report.mxu_busy.to_seconds(), interval_s);
  report.device_macs = counter_or_zero(metrics, "tpu.device_macs");
  report.achieved_macs_per_s =
      ratio(static_cast<double>(report.device_macs), report.mxu_busy.to_seconds());
  report.peak_macs_per_s = gauge_value(metrics, "mxu.peak_macs_per_s");
  report.mxu_efficiency = ratio(report.achieved_macs_per_s, report.peak_macs_per_s);

  // ---- USB link ----
  report.link_busy = busy[static_cast<std::size_t>(Track::kLink)];
  report.link_utilization = ratio(report.link_busy.to_seconds(), interval_s);
  report.link_bytes = counter_or_zero(metrics, "usb.bytes");
  report.link_transfers = counter_or_zero(metrics, "usb.transfers");
  report.effective_bandwidth_bytes_per_s =
      ratio(static_cast<double>(report.link_bytes), report.link_busy.to_seconds());
  report.configured_bandwidth_bytes_per_s =
      gauge_value(metrics, "usb.bandwidth_bytes_per_s");
  report.link_efficiency = ratio(report.effective_bandwidth_bytes_per_s,
                                 report.configured_bandwidth_bytes_per_s);

  // ---- host CPU ----
  report.host_busy = busy[static_cast<std::size_t>(Track::kHost)];
  report.host_utilization = ratio(report.host_busy.to_seconds(), interval_s);

  // ---- parameter cache ----
  report.cache_lookups = counter_or_zero(metrics, "sram.lookups");
  report.cache_hits = counter_or_zero(metrics, "sram.hits");
  report.cache_misses = counter_or_zero(metrics, "sram.misses");
  report.cache_insertions = counter_or_zero(metrics, "sram.insertions");
  report.cache_evictions = counter_or_zero(metrics, "sram.evictions");
  report.cache_hit_rate = ratio(static_cast<double>(report.cache_hits),
                                static_cast<double>(report.cache_lookups));
  report.sram_capacity_bytes = gauge_value(metrics, "sram.capacity_bytes");
  report.sram_peak_bytes = gauge_max(metrics, "sram.used_bytes");
  report.sram_peak_fraction = ratio(report.sram_peak_bytes, report.sram_capacity_bytes);

  // ---- host thread pool ----
  if (pool != nullptr) {
    report.pool = *pool;
    report.pool_lanes = pool_lanes;
    report.pool_speedup = pool->speedup();
    report.pool_busy_fraction = pool->busy_fraction(pool_lanes);
  }

  // ---- derived energy (default power profile, informational) ----
  {
    const PowerProfile profile;
    report.energy_mxu_joules = report.mxu_busy.to_seconds() * profile.mxu_active_watts;
    report.energy_link_joules = report.link_busy.to_seconds() * profile.link_watts;
    report.energy_host_joules = report.host_busy.to_seconds() * profile.host_busy_watts;
    const double idle_s =
        std::max(0.0, interval_s - (report.mxu_busy + report.link_busy +
                                    report.host_busy)
                                       .to_seconds());
    report.energy_idle_joules = idle_s * profile.idle_watts;
    report.energy_total_joules = report.energy_mxu_joules + report.energy_link_joules +
                                 report.energy_host_joules + report.energy_idle_joules;
    report.energy_watts_avg = ratio(report.energy_total_joules, interval_s);
  }

  // ---- resilient executor ----
  report.executor_invocations = counter_or_zero(metrics, "tpu.invocations");
  report.executor_retries = counter_or_zero(metrics, "resilient.invoke_retries");
  report.executor_device_faults = counter_or_zero(metrics, "resilient.device_faults");
  report.executor_fallback_samples =
      counter_or_zero(metrics, "resilient.fallback_samples");
  report.executor_samples = counter_or_zero(metrics, "infer.samples");
  report.retry_rate = ratio(static_cast<double>(report.executor_retries),
                            static_cast<double>(report.executor_invocations));
  report.fallback_rate = ratio(static_cast<double>(report.executor_fallback_samples),
                               static_cast<double>(report.executor_samples));
  return report;
}

std::string ProfileReport::to_json() const {
  std::string out;
  const auto field = [&out](const char* key, double value, bool trailing_comma = true) {
    detail::append_json_string(out, key);
    out.push_back(':');
    detail::append_json_number(out, value);
    if (trailing_comma) {
      out.push_back(',');
    }
  };
  const auto ufield = [&out](const char* key, std::uint64_t value,
                             bool trailing_comma = true) {
    detail::append_json_string(out, key);
    out.push_back(':');
    out += std::to_string(value);
    if (trailing_comma) {
      out.push_back(',');
    }
  };

  out.push_back('{');
  field("interval_s", interval.to_seconds());
  out += "\"trace\":{";
  ufield("events", trace_events);
  ufield("dropped", trace_dropped, false);
  out += "},\"mxu\":{";
  field("busy_s", mxu_busy.to_seconds());
  field("occupancy", mxu_occupancy);
  ufield("device_macs", device_macs);
  field("achieved_macs_per_s", achieved_macs_per_s);
  field("peak_macs_per_s", peak_macs_per_s);
  field("efficiency", mxu_efficiency, false);
  out += "},\"link\":{";
  field("busy_s", link_busy.to_seconds());
  field("utilization", link_utilization);
  ufield("bytes", link_bytes);
  ufield("transfers", link_transfers);
  field("effective_bandwidth_bytes_per_s", effective_bandwidth_bytes_per_s);
  field("configured_bandwidth_bytes_per_s", configured_bandwidth_bytes_per_s);
  field("efficiency", link_efficiency, false);
  out += "},\"host\":{";
  field("busy_s", host_busy.to_seconds());
  field("utilization", host_utilization, false);
  out += "},\"cache\":{";
  ufield("lookups", cache_lookups);
  ufield("hits", cache_hits);
  ufield("misses", cache_misses);
  ufield("insertions", cache_insertions);
  ufield("evictions", cache_evictions);
  field("hit_rate", cache_hit_rate);
  field("capacity_bytes", sram_capacity_bytes);
  field("peak_used_bytes", sram_peak_bytes);
  field("peak_used_fraction", sram_peak_fraction, false);
  out += "},\"pool\":{";
  ufield("lanes", static_cast<std::uint64_t>(pool_lanes));
  ufield("regions", pool.regions);
  ufield("chunks", pool.chunks);
  field("busy_wall_s", pool.busy_seconds);
  field("wall_s", pool.wall_seconds);
  field("busy_fraction", pool_busy_fraction);
  field("speedup", pool_speedup, false);
  out += "},\"energy\":{";
  field("mxu_joules", energy_mxu_joules);
  field("link_joules", energy_link_joules);
  field("host_joules", energy_host_joules);
  field("idle_joules", energy_idle_joules);
  field("total_joules", energy_total_joules);
  field("watts_avg", energy_watts_avg, false);
  out += "},\"executor\":{";
  ufield("invocations", executor_invocations);
  ufield("retries", executor_retries);
  ufield("device_faults", executor_device_faults);
  ufield("fallback_samples", executor_fallback_samples);
  ufield("samples", executor_samples);
  field("retry_rate", retry_rate);
  field("fallback_rate", fallback_rate, false);
  out += "}}";
  return out;
}

std::string ProfileReport::to_table() const {
  std::string out;
  char line[256];
  const auto row = [&](const char* name, const char* value) {
    std::snprintf(line, sizeof(line), "%-26s  %s\n", name, value);
    out += line;
  };
  const auto pct = [&](const char* name, double fraction) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.1f%%", 100.0 * fraction);
    row(name, value);
  };

  out += "profile (derived utilization over the traced interval)\n";
  out.append(64, '-');
  out.push_back('\n');
  row("interval", interval.to_string().c_str());
  {
    char value[96];
    std::snprintf(value, sizeof(value), "%zu recorded, %zu dropped", trace_events,
                  trace_dropped);
    row("trace events", value);
  }

  row("mxu busy", mxu_busy.to_string().c_str());
  pct("mxu occupancy", mxu_occupancy);
  {
    char value[96];
    std::snprintf(value, sizeof(value), "%.3g of %.3g MAC/s (%.1f%%)",
                  achieved_macs_per_s, peak_macs_per_s, 100.0 * mxu_efficiency);
    row("mxu achieved vs peak", value);
  }

  row("link busy", link_busy.to_string().c_str());
  pct("link utilization", link_utilization);
  {
    char value[96];
    std::snprintf(value, sizeof(value), "%.3g of %.3g B/s (%.1f%%)",
                  effective_bandwidth_bytes_per_s, configured_bandwidth_bytes_per_s,
                  100.0 * link_efficiency);
    row("link effective bandwidth", value);
  }

  row("host busy", host_busy.to_string().c_str());
  pct("host utilization", host_utilization);

  {
    char value[128];
    std::snprintf(value, sizeof(value),
                  "%llu lookups, %llu hits, %llu misses (%.1f%% hit rate)",
                  static_cast<unsigned long long>(cache_lookups),
                  static_cast<unsigned long long>(cache_hits),
                  static_cast<unsigned long long>(cache_misses),
                  100.0 * cache_hit_rate);
    row("param cache", value);
  }
  {
    char value[96];
    std::snprintf(value, sizeof(value), "%.3g of %.3g bytes (%.1f%%)", sram_peak_bytes,
                  sram_capacity_bytes, 100.0 * sram_peak_fraction);
    row("sram peak residency", value);
  }

  if (pool.regions > 0) {
    char value[128];
    std::snprintf(value, sizeof(value),
                  "%zu lanes, %.2fx speedup, %.1f%% busy (%llu regions)",
                  pool_lanes, pool_speedup, 100.0 * pool_busy_fraction,
                  static_cast<unsigned long long>(pool.regions));
    row("host thread pool", value);
  } else {
    row("host thread pool", "no fanned-out regions");
  }

  {
    char value[128];
    std::snprintf(value, sizeof(value),
                  "%.3g J total (mxu %.3g, link %.3g, host %.3g, idle %.3g)",
                  energy_total_joules, energy_mxu_joules, energy_link_joules,
                  energy_host_joules, energy_idle_joules);
    row("energy (default profile)", value);
  }
  {
    char value[64];
    std::snprintf(value, sizeof(value), "%.3g W average", energy_watts_avg);
    row("power", value);
  }

  {
    char value[128];
    std::snprintf(value, sizeof(value),
                  "%llu invocations, %llu retries, %llu fallback samples (%.1f%%)",
                  static_cast<unsigned long long>(executor_invocations),
                  static_cast<unsigned long long>(executor_retries),
                  static_cast<unsigned long long>(executor_fallback_samples),
                  100.0 * fallback_rate);
    row("resilient executor", value);
  }
  return out;
}

}  // namespace hdc::obs
