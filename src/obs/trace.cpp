#include "obs/trace.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace hdc::obs {
namespace {

/// Chrome trace timestamps are microseconds; fixed notation preserves
/// sub-microsecond structure (USB microframes, PE-array fills).
void append_timestamp(std::string& out, SimDuration t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", t.to_micros());
  out += buf;
}

void append_args(std::string& out, const std::vector<TraceArg>& args,
                 std::int64_t request_id) {
  out += ",\"args\":{";
  bool first = true;
  if (request_id >= 0) {
    out += "\"req\":";
    out += std::to_string(request_id);
    first = false;
  }
  for (const auto& arg : args) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    detail::append_json_string(out, arg.key);
    out.push_back(':');
    if (const auto* i = std::get_if<std::int64_t>(&arg.value)) {
      out += std::to_string(*i);
    } else if (const auto* d = std::get_if<double>(&arg.value)) {
      detail::append_json_number(out, *d);
    } else {
      detail::append_json_string(out, std::get<std::string>(arg.value));
    }
  }
  out.push_back('}');
}

}  // namespace

const char* track_name(Track track) {
  switch (track) {
    case Track::kHost: return "host CPU";
    case Track::kLink: return "USB link";
    case Track::kDevice: return "Edge TPU (systolic array)";
    case Track::kExecutor: return "executor";
    case Track::kTrainer: return "training loop";
  }
  return "unknown";
}

TraceContext::TraceContext(TraceConfig config) : config_(config) {
  events_.reserve(config_.max_events < 4096 ? config_.max_events : 4096);
}

void TraceContext::push(TraceEvent event) {
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    if (!drop_warned_) {
      drop_warned_ = true;
      HDC_LOG_WARN << "trace: event cap of " << config_.max_events
                   << " reached; further events are counted but not recorded "
                      "(raise --trace-cap / TraceConfig.max_events)";
    }
    return;
  }
  event.request_id = request_id_;
  events_.push_back(std::move(event));
}

void TraceContext::span(Track track, std::string_view name, SimDuration duration,
                        std::vector<TraceArg> args) {
  span_at(track, name, now_, duration, std::move(args));
  now_ += duration;
}

void TraceContext::span_at(Track track, std::string_view name, SimDuration start,
                           SimDuration duration, std::vector<TraceArg> args) {
  push(TraceEvent{TraceEvent::Kind::kSpan, track, std::string(name), start, duration,
                  std::move(args)});
}

void TraceContext::instant(Track track, std::string_view name,
                           std::vector<TraceArg> args) {
  instant_at(track, name, now_, std::move(args));
}

void TraceContext::instant_at(Track track, std::string_view name, SimDuration at,
                              std::vector<TraceArg> args) {
  push(TraceEvent{TraceEvent::Kind::kInstant, track, std::string(name), at,
                  SimDuration(), std::move(args)});
}

SimDuration TraceContext::span_total(std::string_view name) const {
  SimDuration total;
  for (const auto& event : events_) {
    if (event.kind == TraceEvent::Kind::kSpan && event.name == name) {
      total += event.duration;
    }
  }
  return total;
}

void TraceContext::write_chrome_trace(std::ostream& os) const {
  std::string out;
  out.reserve(256 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Process metadata: one "process" per simulated component, sorted in the
  // hardware's host -> link -> device order.
  bool first = true;
  for (std::size_t t = 0; t < kNumTracks; ++t) {
    const int pid = static_cast<int>(t) + 1;
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    detail::append_json_string(out, track_name(static_cast<Track>(t)));
    out += "}},{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"sort_index\":";
    out += std::to_string(pid);
    out += "}}";
  }

  for (const auto& event : events_) {
    out.push_back(',');
    out += "{\"name\":";
    detail::append_json_string(out, event.name);
    out += ",\"cat\":\"sim\",\"ph\":";
    out += event.kind == TraceEvent::Kind::kSpan ? "\"X\"" : "\"i\"";
    out += ",\"ts\":";
    append_timestamp(out, event.start);
    if (event.kind == TraceEvent::Kind::kSpan) {
      out += ",\"dur\":";
      append_timestamp(out, event.duration);
    } else {
      out += ",\"s\":\"p\"";
    }
    out += ",\"pid\":";
    out += std::to_string(static_cast<int>(event.track) + 1);
    out += ",\"tid\":0";
    if (!event.args.empty() || event.request_id >= 0) {
      append_args(out, event.args, event.request_id);
    }
    out.push_back('}');
  }

  if (dropped_ > 0) {
    out += ",{\"name\":\"trace.truncated\",\"cat\":\"sim\",\"ph\":\"i\",\"ts\":";
    append_timestamp(out, now_);
    out += ",\"s\":\"g\",\"pid\":1,\"tid\":0,\"args\":{\"dropped_events\":";
    out += std::to_string(dropped_);
    out += ",\"max_events\":";
    out += std::to_string(config_.max_events);
    out += "}}";
  }

  out += "]}";
  os << out;
}

std::string TraceContext::chrome_trace_json() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

}  // namespace hdc::obs
