#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace hdc::obs {

/// Per-request causal tracing and latency attribution.
///
/// A *request* on the serve path is one offered chunk; its id is the offered
/// chunk index, which is stable across `--checkpoint`/`--resume`. Every
/// request carries a chain of stage spans (queue wait, each retry attempt
/// with its backoff, transfer, MXU compute, host fallback, online update)
/// recorded purely from the simulated-time cost model — tracing never feeds
/// back into timings, so attaching it cannot change results.
///
/// The attribution invariant: grouping the span durations by stage and
/// assigning the residual to `kOther` makes the stage durations sum *exactly*
/// (bitwise, in simulated seconds) to the request's end-to-end latency. The
/// spans themselves cover the serviced interval gap-free by construction, so
/// the residual is at most a few ULPs of accumulated rounding.

/// Stage taxonomy for attribution. Order is load-bearing: `RequestAttribution`
/// sums stages in index order with `kOther` last, which is what makes the
/// sum-to-latency invariant exact (see `RequestTrace::finalize`).
enum class Stage : std::uint8_t {
  kQueueWait = 0,   ///< admission queue wait before service starts
  kBatchWait,       ///< router hold while a micro-batch coalesces on a device
  kBackoff,         ///< retry backoff charged between device attempts
  kSwap,            ///< model swap: weight upload to make a tenant resident
  kTransfer,        ///< USB transfer + weight streaming/upload
  kDevice,          ///< MXU compute on the simulated TPU
  kDeviceHost,      ///< host-partition ops inside the device pipeline
  kHost,            ///< CPU execution: host tier service or fallback samples
  kUpdate,          ///< online learner update priced after the chunk
  kOther,           ///< residual (latency minus all recorded stages)
};

inline constexpr std::size_t kNumStages = 10;

const char* stage_name(Stage stage) noexcept;

/// One span in a request's causal chain.
struct StageSpan {
  Stage stage{};
  SimDuration start;
  SimDuration duration;
  std::uint32_t sample = 0;   ///< batch row for per-sample spans (0 otherwise)
  std::uint32_t attempt = 0;  ///< retry attempt index (0 = first try)
};

/// Stage-grouped durations for one request (or an aggregate over many).
struct RequestAttribution {
  std::array<SimDuration, kNumStages> stages{};

  SimDuration& operator[](Stage s) { return stages[static_cast<std::size_t>(s)]; }
  SimDuration operator[](Stage s) const { return stages[static_cast<std::size_t>(s)]; }

  /// Sum in fixed index order (`kOther` last) — the order `finalize` used to
  /// compute the residual, so `total()` reproduces the latency bit-exactly.
  SimDuration total() const;

  /// Stage share of `total()`; 0 when the total is zero.
  double fraction(Stage s) const;

  RequestAttribution& operator+=(const RequestAttribution& other);
};

/// How a request left the serve loop.
enum class RequestOutcome : std::uint8_t {
  kServed = 0,
  kShed,     ///< rejected (or displaced) by the bounded admission queue
  kExpired,  ///< admitted but its deadline elapsed before service started
};

const char* outcome_name(RequestOutcome outcome) noexcept;

/// Causal chain + attribution for one request. Built by the serve loop,
/// populated by the resilient executor / serving endpoint as spans complete.
struct RequestTrace {
  std::uint64_t request_id = 0;
  RequestOutcome outcome = RequestOutcome::kServed;
  std::uint8_t tier = 0;       ///< runtime::ServeTier the request was served on
  std::uint64_t samples = 0;   ///< samples in the chunk
  bool faulty = false;         ///< retries, fallback, or circuit events occurred
  SimDuration arrival;
  SimDuration end;             ///< set by finalize()
  SimDuration cursor;          ///< append position for the next span
  std::vector<StageSpan> spans;
  RequestAttribution attribution;  ///< filled by finalize()

  /// Starts the chain: stamps the id, sets arrival, and places the append
  /// cursor at the arrival time.
  void begin(std::uint64_t id, SimDuration arrival_time);

  /// Appends a span at the cursor and advances the cursor by its duration.
  void append(Stage stage, SimDuration duration, std::uint32_t sample = 0,
              std::uint32_t attempt = 0);

  /// Closes the chain at `end_time` and computes the attribution: spans are
  /// grouped by stage, then `kOther` takes the residual
  /// `latency - sum(other stages)`. Summing the stages back in the same fixed
  /// order (see RequestAttribution::total) returns `latency()` bit-exactly
  /// (Sterbenz: the final add is of two nearly-equal magnitudes).
  void finalize(SimDuration end_time);

  SimDuration latency() const { return end - arrival; }

  /// Deterministic memory estimate used for the exemplar store's hard bound.
  std::size_t approx_bytes() const;
};

/// Why an exemplar was retained.
enum class ExemplarReason : std::uint8_t {
  kShed = 0,
  kExpired,
  kTierFallback,  ///< served off the full tier, or device samples fell back to CPU
  kTailLatency,   ///< per-sample latency landed at/above the windowed p99
};

inline constexpr std::size_t kNumExemplarReasons = 4;

const char* exemplar_reason_name(ExemplarReason reason) noexcept;

struct RequestExemplar {
  ExemplarReason reason{};
  RequestTrace trace;
};

/// Tail-based exemplar retention bounds. `max_bytes` is a hard cap on the
/// deterministic `approx_bytes` footprint of all retained chains together.
struct ExemplarConfig {
  std::size_t max_bytes = 256 * 1024;
  std::size_t max_per_reason = 16;

  void validate() const;  ///< throws hdc::Error on nonsensical bounds
};

/// Bounded store of full span chains for interesting requests (shed, expired,
/// tier-fallback, tail-latency). Eviction is deterministic: oldest exemplar
/// of the same reason once the per-reason cap is hit, then oldest overall
/// until the new chain fits under `max_bytes`; a chain that cannot fit even
/// into an empty store is dropped (counted, never partially stored).
class ExemplarStore {
 public:
  explicit ExemplarStore(ExemplarConfig config = {});

  /// Offers a chain for retention; returns true when it was stored.
  bool offer(ExemplarReason reason, RequestTrace trace);

  const std::deque<RequestExemplar>& exemplars() const { return exemplars_; }
  const RequestTrace* find(std::uint64_t request_id) const;

  std::size_t approx_bytes() const { return bytes_; }
  std::size_t peak_bytes() const { return peak_bytes_; }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t retained() const { return static_cast<std::uint64_t>(exemplars_.size()); }
  std::uint64_t evicted() const { return evicted_; }

  /// One `hdc-request-trace-v1` JSON object per line (consumed by hdc_traceq).
  std::string to_jsonl() const;

 private:
  void evict_front();
  void evict_oldest_of(ExemplarReason reason);

  ExemplarConfig config_;
  std::deque<RequestExemplar> exemplars_;
  std::size_t bytes_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t evicted_ = 0;
  std::array<std::size_t, kNumExemplarReasons> per_reason_{};
};

/// Serializes one exemplar as an `hdc-request-trace-v1` JSON object (no
/// trailing newline). Strings are JSON-escaped.
std::string request_trace_json(const RequestTrace& trace, const char* reason);

}  // namespace hdc::obs
