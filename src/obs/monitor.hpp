#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/byte_io.hpp"
#include "common/sim_time.hpp"
#include "obs/request_trace.hpp"

namespace hdc::obs {

/// Shape of a sliding window over simulated time: `span` seconds of history
/// kept as `buckets` equal-width ring slots. Observations older than `span`
/// are evicted exactly at bucket boundaries — an observation placed in
/// bucket b leaves the window the instant the cursor enters bucket
/// b + buckets (i.e. `span` simulated seconds after its bucket opened), so
/// two runs over the same simulated timeline always agree on window content.
struct WindowConfig {
  SimDuration span = SimDuration::seconds(2);
  std::size_t buckets = 16;

  SimDuration bucket_width() const { return span * (1.0 / static_cast<double>(buckets)); }
  void validate() const;
};

namespace detail {

/// Ring of per-bucket payloads indexed by absolute simulated-time bucket.
/// Advancing the cursor resets every slot whose bucket has expired, so the
/// live window content is always "all slots". Timestamps must be
/// non-decreasing (earlier timestamps clamp into the current bucket).
template <typename Slot>
class BucketRing {
 public:
  BucketRing(WindowConfig config, Slot zero)
      : config_(config), zero_(std::move(zero)), slots_(config.buckets, zero_) {
    config_.validate();
  }

  void advance_to(SimDuration t) {
    const auto target = absolute_bucket(t);
    if (target <= cursor_) {
      return;
    }
    const std::uint64_t steps = target - cursor_;
    const std::uint64_t to_clear =
        steps < static_cast<std::uint64_t>(slots_.size())
            ? steps
            : static_cast<std::uint64_t>(slots_.size());
    for (std::uint64_t i = 1; i <= to_clear; ++i) {
      slots_[static_cast<std::size_t>((cursor_ + i) % slots_.size())] = zero_;
    }
    cursor_ = target;
  }

  Slot& at(SimDuration t) {
    advance_to(t);
    return slots_[static_cast<std::size_t>(cursor_ % slots_.size())];
  }

  const std::vector<Slot>& slots() const noexcept { return slots_; }

  // ---- exact-state round-trip hooks (serve checkpoint) ----
  std::uint64_t cursor() const noexcept { return cursor_; }
  void set_cursor(std::uint64_t cursor) noexcept { cursor_ = cursor; }
  /// Mutable slot access for checkpoint restore; the caller must preserve
  /// the slot count (the window shape is part of the monitor config).
  std::vector<Slot>& slots_mutable() noexcept { return slots_; }

 private:
  std::uint64_t absolute_bucket(SimDuration t) const {
    const double w = config_.bucket_width().to_seconds();
    const double idx = t.to_seconds() / w;
    return idx <= 0.0 ? 0 : static_cast<std::uint64_t>(idx);
  }

  WindowConfig config_;
  Slot zero_;
  std::vector<Slot> slots_;
  std::uint64_t cursor_ = 0;
};

}  // namespace detail

/// Windowed event count (and rate over the window span).
class SlidingCounter {
 public:
  explicit SlidingCounter(WindowConfig config) : ring_(config, 0), span_(config.span) {}

  void add(SimDuration t, std::uint64_t n = 1) { ring_.at(t) += n; }
  std::uint64_t sum(SimDuration now);
  /// Events per simulated second over the window span.
  double rate(SimDuration now) { return static_cast<double>(sum(now)) / span_.to_seconds(); }

  void serialize(ByteWriter& writer) const;
  void restore(ByteReader& reader);

 private:
  detail::BucketRing<std::uint64_t> ring_;
  SimDuration span_;
};

/// Windowed mean of a real-valued series (per-slot sum + count).
class SlidingMean {
 public:
  explicit SlidingMean(WindowConfig config) : ring_(config, Slot{}) {}

  void add(SimDuration t, double value) {
    Slot& slot = ring_.at(t);
    slot.sum += value;
    ++slot.count;
  }
  std::uint64_t count(SimDuration now);
  /// Windowed mean; 0 when the window is empty.
  double mean(SimDuration now);

  void serialize(ByteWriter& writer) const;
  void restore(ByteReader& reader);

 private:
  struct Slot {
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  detail::BucketRing<Slot> ring_;
};

/// Windowed latency histogram with log-linear bins (16 per decade from 1 ns
/// to 1000 s plus under/overflow), giving rolling p50/p95/p99 in O(bins)
/// with memory bounded by buckets x bins — never by the sample count.
class SlidingHistogram {
 public:
  static constexpr std::size_t kBinsPerDecade = 16;
  static constexpr int kMinExponent = -9;  ///< 1 ns
  static constexpr int kMaxExponent = 3;   ///< 1000 s
  static constexpr std::size_t kFiniteBins =
      kBinsPerDecade * static_cast<std::size_t>(kMaxExponent - kMinExponent);
  /// finite bins + underflow (< 1 ns) + overflow (>= 1000 s)
  static constexpr std::size_t kBins = kFiniteBins + 2;

  explicit SlidingHistogram(WindowConfig config) : ring_(config, Slot{}) {}

  void observe(SimDuration t, SimDuration value);

  std::uint64_t count(SimDuration now);
  SimDuration mean(SimDuration now);
  /// Bin-interpolated windowed quantile (q in [0, 1]), clamped to the
  /// observed per-window [min, max]. Zero when the window is empty.
  SimDuration quantile(SimDuration now, double q);

  void serialize(ByteWriter& writer) const;
  void restore(ByteReader& reader);

 private:
  struct Slot {
    std::array<std::uint64_t, kBins> bins{};
    std::uint64_t count = 0;
    double sum_s = 0.0;
    double min_s = 0.0;
    double max_s = 0.0;
  };

  static std::size_t bin_index(double seconds);
  static double bin_lower_seconds(std::size_t bin);
  static double bin_upper_seconds(std::size_t bin);

  detail::BucketRing<Slot> ring_;
};

/// Time-decayed exponential moving average: alpha = 1 - exp(-dt / tau), so
/// the smoothing is invariant to how samples are spaced in simulated time.
class Ewma {
 public:
  explicit Ewma(double tau_seconds) : tau_s_(tau_seconds) {}

  void observe(SimDuration t, double value);
  bool empty() const noexcept { return !seeded_; }
  double value() const noexcept { return value_; }

  /// Exact-state round-trip (value, last observation time, seeded flag) for
  /// the serve checkpoint; tau comes from the reconstructed config.
  struct State {
    double value = 0.0;
    SimDuration last;
    bool seeded = false;
  };
  State state() const noexcept { return State{value_, last_, seeded_}; }
  void set_state(const State& state) noexcept {
    value_ = state.value;
    last_ = state.last;
    seeded_ = state.seeded;
  }

 private:
  double tau_s_;
  double value_ = 0.0;
  SimDuration last_;
  bool seeded_ = false;
};

/// One edge of an alarm's lifecycle: fired (crossed into violation) or
/// cleared (recovered). Exactly one event per crossing, never per sample.
struct AlarmEvent {
  std::string alarm;
  bool fired = false;  ///< true = fire, false = clear
  SimDuration at;
  double value = 0.0;
  double threshold = 0.0;
  /// Request id of the slowest sample in the window when the edge was
  /// produced (-1 when the window was empty). Exemplar capture retains the
  /// full span chain for tail requests, so this id links the alarm line
  /// directly to a concrete causal trace (`hdc_traceq --req <id>`).
  std::int64_t exemplar_request_id = -1;
  /// Free-form culprit tag ("class=3", "pair=2->5"); empty for alarms whose
  /// signal has no per-entity argmax. Appended to the structured log line as
  /// ` detail=...` and carried through checkpoints.
  std::string detail;
};

/// Emits the canonical `alarm=... event=fire|clear ...` WARN line for one
/// edge (shared by ServingMonitor and ModelQualityStats so log consumers see
/// one grammar).
void log_alarm_event(const AlarmEvent& event);

/// Edge-triggered threshold alarm: fires once when the value crosses the
/// threshold, stays silent while the condition holds, and clears once when
/// the value recovers.
class ThresholdAlarm {
 public:
  ThresholdAlarm(std::string name, double threshold)
      : name_(std::move(name)), threshold_(threshold) {}

  /// Returns the edge event if this update crossed the threshold.
  std::optional<AlarmEvent> update(SimDuration t, double value);

  const std::string& name() const noexcept { return name_; }
  double threshold() const noexcept { return threshold_; }
  bool firing() const noexcept { return firing_; }
  double last_value() const noexcept { return last_value_; }
  std::uint64_t fired_total() const noexcept { return fired_total_; }

  /// Exact-state restore (serve checkpoint); name/threshold come from the
  /// reconstructed config.
  void restore(bool firing, double last_value, std::uint64_t fired_total) noexcept {
    firing_ = firing;
    last_value_ = last_value;
    fired_total_ = fired_total;
  }

 private:
  std::string name_;
  double threshold_;
  bool firing_ = false;
  double last_value_ = 0.0;
  std::uint64_t fired_total_ = 0;
};

namespace detail {
/// Alarm-event wire format shared by ServingMonitor, ModelQualityStats and
/// the quarantine gate (serve checkpoint).
void write_alarm_event(ByteWriter& writer, const AlarmEvent& event);
AlarmEvent read_alarm_event(ByteReader& reader);
void write_alarm_events(ByteWriter& writer, const std::vector<AlarmEvent>& events);
std::vector<AlarmEvent> read_alarm_events(ByteReader& reader);
/// The `alarm=quarantine event=summary ...` WARN emitted on recovery.
void log_quarantine_summary(std::uint64_t suppressed, std::uint64_t replayed, SimDuration at);
}  // namespace detail

/// Device-quarantine gate for alarm edges (suppress-and-summarize), shared
/// by `ServingMonitor` and `ModelQualityStats`: while quarantined, alarm
/// *fire* edges are swallowed (counted, not emitted); a fire-then-clear
/// wholly inside the quarantine nets to silence, while the clear of a
/// pre-quarantine fire is still emitted exactly. Leaving quarantine re-emits
/// one fire per still-firing suppressed alarm, stamped at the recovery time,
/// plus a summary log line. Purely observational — it gates which events are
/// emitted, never what the alarms compute.
class QuarantineGate {
 public:
  bool quarantined() const noexcept { return quarantined_; }
  std::uint64_t suppressed_total() const noexcept { return suppressed_total_; }

  /// Routes one alarm edge. `emit(const AlarmEvent&)` appends to the owner's
  /// event history / structured log.
  template <typename Emit>
  void dispatch(std::optional<AlarmEvent> event, Emit&& emit) {
    if (!event.has_value()) {
      return;
    }
    if (!quarantined_) {
      emit(*event);
      return;
    }
    if (event->fired) {
      // Swallow the fire but remember it (latest edge wins per alarm) so
      // recovery can replay still-firing conditions once.
      ++suppressed_total_;
      ++suppressed_this_quarantine_;
      for (AlarmEvent& pending : pending_fires_) {
        if (pending.alarm == event->alarm) {
          pending = *event;
          return;
        }
      }
      pending_fires_.push_back(*event);
      return;
    }
    // Clear edge: if it closes a suppressed fire, the pair nets to silence;
    // otherwise it clears a pre-quarantine fire and is emitted exactly.
    for (auto it = pending_fires_.begin(); it != pending_fires_.end(); ++it) {
      if (it->alarm == event->alarm) {
        pending_fires_.erase(it);
        return;
      }
    }
    emit(*event);
  }

  /// Entering quarantine arms suppression; leaving replays one fire per
  /// still-firing suppressed alarm (`find(name)` resolves the owner's
  /// `ThresholdAlarm*`, null = unknown) and logs the summary line.
  template <typename FindAlarm, typename Emit>
  void set_quarantined(bool quarantined, SimDuration at, FindAlarm&& find, Emit&& emit) {
    if (quarantined == quarantined_) {
      return;
    }
    quarantined_ = quarantined;
    if (quarantined_) {
      suppressed_this_quarantine_ = 0;
      return;
    }
    std::uint64_t replayed = 0;
    for (const AlarmEvent& pending : pending_fires_) {
      const ThresholdAlarm* alarm = find(std::string_view(pending.alarm));
      if (alarm != nullptr && alarm->firing()) {
        AlarmEvent event = pending;
        event.at = at;
        event.value = alarm->last_value();
        emit(event);
        ++replayed;
      }
    }
    pending_fires_.clear();
    if (suppressed_this_quarantine_ > 0) {
      detail::log_quarantine_summary(suppressed_this_quarantine_, replayed, at);
    }
    suppressed_this_quarantine_ = 0;
  }

  /// Exact-state round-trip (serve checkpoint). Byte layout is the historic
  /// ServingMonitor quarantine block: quarantined u8, pending fire events,
  /// suppressed_total u64, suppressed_this_quarantine u64.
  void serialize(ByteWriter& writer) const;
  void restore(ByteReader& reader);

 private:
  bool quarantined_ = false;
  std::vector<AlarmEvent> pending_fires_;  ///< fires suppressed in quarantine
  std::uint64_t suppressed_total_ = 0;
  std::uint64_t suppressed_this_quarantine_ = 0;
};

/// Everything the live monitor watches, with thresholds for the alarms.
/// `window.span` of zero (with `ServingLoop`) means "auto-size from the
/// first served chunk"; the monitor itself requires a positive span.
struct MonitorConfig {
  std::uint32_t num_classes = 0;  ///< required: sizes the per-class counters
  WindowConfig window;
  /// EWMA time constants; 0 = derive from the window span (span/4, span*8).
  double ewma_tau_short_s = 0.0;
  double ewma_tau_long_s = 0.0;
  /// Latency SLO: `slo_error_budget` is the allowed fraction of samples over
  /// `slo_latency` in the window; burn rate = observed fraction / budget.
  SimDuration slo_latency = SimDuration::millis(5);
  double slo_error_budget = 0.01;
  /// Alarm thresholds (alarm fires while metric > threshold).
  double alarm_burn_rate = 2.0;
  double alarm_error_rate = 0.5;
  double alarm_fallback_rate = 0.25;
  double alarm_drift_score = 0.35;
  /// Windowed fraction of offered samples shed or expired by admission
  /// control before the "shed_rate" alarm fires.
  double alarm_shed_rate = 0.5;
  /// Windowed samples required before error/drift alarms are evaluated, so a
  /// cold window cannot fire on its first mistake.
  std::uint64_t min_samples = 32;

  void validate() const;
};

/// Point-in-time view of the monitor, exported as deterministic JSON
/// ("hdc-monitor-v1", byte-identical for a fixed seed/config so snapshots
/// can be committed as baselines and gated by `hdc_perfdiff`) and as
/// Prometheus text exposition.
struct MonitorSnapshot {
  SimDuration at;

  // lifetime
  std::uint64_t samples_total = 0;
  std::uint64_t errors_total = 0;
  double lifetime_accuracy = 0.0;

  // window
  double window_span_s = 0.0;
  std::uint64_t window_samples = 0;
  double throughput_sps = 0.0;
  double latency_mean_s = 0.0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double windowed_accuracy = 0.0;
  double windowed_error_rate = 0.0;
  double margin_mean = 0.0;
  double fallback_rate = 0.0;
  double retry_rate = 0.0;

  // ewma
  double ewma_latency_s = 0.0;
  double ewma_margin = 0.0;
  double ewma_accuracy = 0.0;

  // slo
  double slo_latency_s = 0.0;
  double slo_violation_fraction = 0.0;
  double slo_error_budget = 0.0;
  double slo_burn_rate = 0.0;

  // drift
  double drift_score = 0.0;
  double drift_margin_reference = 0.0;
  double drift_margin_current = 0.0;

  // admission / degradation ladder
  std::uint64_t offered_samples = 0;   ///< windowed samples offered for admission
  double shed_rate = 0.0;              ///< windowed (shed + expired) / offered
  double degraded_fraction = 0.0;      ///< windowed degraded-tier / served samples
  std::uint64_t shed_total = 0;        ///< lifetime samples shed by admission
  std::uint64_t expired_total = 0;     ///< lifetime samples expired on deadline
  std::uint64_t degraded_total = 0;    ///< lifetime samples served on degraded tiers
  bool quarantined = false;            ///< device quarantined at snapshot time
  std::uint64_t suppressed_alarms_total = 0;  ///< fire edges swallowed in quarantine

  // latency attribution (windowed stage-waterfall fractions; see
  // obs/request_trace.hpp for the stage taxonomy)
  double attribution_total_s = 0.0;  ///< windowed sum of attributed seconds
  std::array<double, kNumStages> attribution_fractions{};
  /// Request id of the slowest sample in the window (-1 = empty window);
  /// resolvable to a full span chain via the exemplar store / hdc_traceq.
  std::int64_t exemplar_request_id = -1;

  std::vector<std::uint64_t> class_counts;  ///< windowed predictions per class

  struct AlarmState {
    std::string name;
    bool firing = false;
    std::uint64_t fired_total = 0;
    double value = 0.0;
    double threshold = 0.0;
  };
  std::vector<AlarmState> alarms;

  /// Model-quality section (see obs/model_stats.hpp), pre-rendered by the
  /// owning serving loop and spliced verbatim: `model_json` becomes the
  /// snapshot's `"model"` object, `model_metrics_json` is a run of
  /// `,"model.x":{...}` entries appended inside the flat `metrics` map, and
  /// `model_prometheus` is appended to the text exposition. All empty when
  /// no model-quality monitor is attached.
  std::string model_json;
  std::string model_metrics_json;
  std::string model_prometheus;

  /// Energy section (see obs/energy.hpp), spliced the same way: `energy_json`
  /// becomes the snapshot's `"energy"` object, `energy_metrics_json` a run of
  /// `,"energy.x":{...}` gate entries, `energy_prometheus` the `hdc_energy_*`
  /// families. All empty when no energy accountant is attached.
  std::string energy_json;
  std::string energy_metrics_json;
  std::string energy_prometheus;

  /// hdc-monitor-v1 JSON. Contains the nested telemetry plus a flat
  /// `metrics` map in the hdc-bench-v1 entry shape, so `hdc_perfdiff` can
  /// gate a snapshot exactly like a bench JSON.
  std::string to_json() const;
  /// Prometheus text-format exposition (`hdc_serve_*` families).
  std::string to_prometheus() const;
};

/// Low-overhead streaming telemetry over a live serving loop. Strictly
/// observational: it receives copies of values the serving path already
/// computed and never feeds anything back, so attaching (or resizing) a
/// monitor cannot change a prediction, model state, or simulated timing.
///
/// Alarms ("latency_slo" on SLO burn rate, "error_rate", "fallback_rate",
/// "drift" on margin collapse, "shed_rate" on admission shedding) are
/// edge-triggered; each edge is appended to `events()` and emitted into the
/// structured log (grep/jq-able through `log::set_json_sink`). While the
/// serving layer marks the device quarantined, fire edges are suppressed and
/// summarized instead of re-firing (see `set_quarantined`).
class ServingMonitor {
 public:
  explicit ServingMonitor(MonitorConfig config);

  const MonitorConfig& config() const noexcept { return config_; }

  /// One served sample: prediction + prequential correctness + quality
  /// signals, stamped with its simulated completion time.
  struct Sample {
    SimDuration at;
    SimDuration latency;
    std::uint32_t predicted = 0;
    bool correct = false;
    double margin = 0.0;  ///< top1 - top2 similarity of the scoring model
    /// Request (offered chunk) the sample belongs to; -1 = untracked. Feeds
    /// the windowed slowest-request exemplar id on alarms and snapshots.
    std::int64_t request_id = -1;
  };
  void record(const Sample& sample);

  /// One request's stage-grouped latency attribution (durations already
  /// summed per stage by `RequestTrace::finalize`), stamped at the request's
  /// completion time. Aggregated into windowed stage-waterfall fractions.
  void record_attribution(SimDuration at, const RequestAttribution& attribution);

  /// Batch-level transport health (the resilient executor reports fallback
  /// and retry counts per batch, not per sample).
  void record_transport(SimDuration at, std::uint64_t samples,
                        std::uint64_t cpu_fallback_samples, std::uint64_t retries);

  /// Admission-control and degradation-ladder outcome of one arrival/service
  /// event: how many samples were offered, shed outright, expired on their
  /// deadline, and served on a degraded (non-full) ladder tier.
  void record_admission(SimDuration at, std::uint64_t offered_samples,
                        std::uint64_t shed_samples, std::uint64_t expired_samples,
                        std::uint64_t degraded_samples);

  /// Device-quarantine gate for alarm edges (suppress-and-summarize): while
  /// quarantined, alarm *fire* edges are swallowed (counted, not emitted);
  /// a fire-then-clear wholly inside the quarantine nets to silence, while
  /// the clear of a pre-quarantine fire is still emitted exactly. Leaving
  /// quarantine re-emits one fire per still-firing suppressed alarm, stamped
  /// at the recovery time, plus a summary log line. Purely observational —
  /// it gates which events are emitted, never what the alarms compute.
  void set_quarantined(bool quarantined, SimDuration at);
  bool quarantined() const noexcept { return gate_.quarantined(); }
  std::uint64_t suppressed_fires_total() const noexcept { return gate_.suppressed_total(); }

  // ---- windowed views (advance the window to `now`, then read) ----
  std::uint64_t window_samples(SimDuration now) { return latency_.count(now); }
  double windowed_accuracy(SimDuration now);
  double windowed_error_rate(SimDuration now);
  SimDuration latency_quantile(SimDuration now, double q) {
    return latency_.quantile(now, q);
  }
  double windowed_margin(SimDuration now) { return margin_.mean(now); }
  double slo_violation_fraction(SimDuration now);
  double slo_burn_rate(SimDuration now);
  double fallback_rate(SimDuration now);
  /// Windowed (shed + expired) / offered; 0 while nothing was offered.
  double shed_rate(SimDuration now);
  /// Windowed degraded-tier fraction of served samples.
  double degraded_fraction(SimDuration now);
  /// Margin-collapse drift score: relative collapse of the windowed margin
  /// against the slow-EWMA reference, in [0, 1].
  double drift_score() const;
  /// Request id of the slowest sample currently in the window (-1 = empty).
  std::int64_t slowest_request_id(SimDuration now);
  /// Windowed per-stage attributed seconds (index = obs::Stage).
  std::array<double, kNumStages> windowed_attribution_s(SimDuration now);

  std::uint64_t samples_total() const noexcept { return samples_total_; }
  std::uint64_t errors_total() const noexcept { return errors_total_; }

  // ---- alarms ----
  const std::vector<AlarmEvent>& events() const noexcept { return events_; }
  bool alarm_firing(std::string_view name) const;
  std::uint64_t alarm_fired_total(std::string_view name) const;

  MonitorSnapshot snapshot(SimDuration now);

  /// Exact-state round-trip for the serve checkpoint: resolved config, every
  /// sliding window (rings, cursors, slots), EWMAs, alarm states, the alarm
  /// event history and quarantine-gate state, and the lifetime totals.
  /// Restoring yields a monitor whose subsequent alarm edges and snapshots
  /// are byte-identical to one that was never serialized.
  void serialize(ByteWriter& writer) const;
  static ServingMonitor deserialize(ByteReader& reader);

 private:
  void evaluate_alarms(SimDuration now);
  void push_event(const AlarmEvent& event);
  /// Routes an alarm edge through the quarantine gate (see set_quarantined).
  void dispatch_event(std::optional<AlarmEvent> event);
  const ThresholdAlarm* find_alarm(std::string_view name) const;

  MonitorConfig config_;
  double tau_short_s_;
  double tau_long_s_;

  SlidingHistogram latency_;
  SlidingCounter samples_;
  SlidingCounter errors_;
  SlidingCounter slo_violations_;
  SlidingCounter transport_samples_;
  SlidingCounter fallback_samples_;
  SlidingCounter retries_;
  SlidingCounter offered_;
  SlidingCounter shed_;
  SlidingCounter expired_;
  SlidingCounter degraded_;
  SlidingMean margin_;
  detail::BucketRing<std::vector<std::uint64_t>> class_counts_;
  /// Per-bucket slowest sample (latency + request id) for exemplar linking.
  struct SlowestSlot {
    double latency_s = -1.0;
    std::int64_t request_id = -1;
  };
  detail::BucketRing<SlowestSlot> slowest_;
  /// Per-bucket attributed seconds by stage.
  detail::BucketRing<std::array<double, kNumStages>> attribution_;

  Ewma ewma_latency_;
  Ewma ewma_margin_;
  Ewma ewma_accuracy_;
  Ewma margin_reference_;  ///< slow EWMA, the drift detector's baseline

  ThresholdAlarm alarm_latency_;
  ThresholdAlarm alarm_error_;
  ThresholdAlarm alarm_fallback_;
  ThresholdAlarm alarm_drift_;
  ThresholdAlarm alarm_shed_;
  std::vector<AlarmEvent> events_;

  QuarantineGate gate_;

  std::uint64_t samples_total_ = 0;
  std::uint64_t errors_total_ = 0;
  std::uint64_t shed_total_ = 0;
  std::uint64_t expired_total_ = 0;
  std::uint64_t degraded_total_ = 0;
};

}  // namespace hdc::obs
