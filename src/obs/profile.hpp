#pragma once

#include <cstdint>
#include <string>

#include "common/parallel.hpp"
#include "common/sim_time.hpp"

namespace hdc::obs {

class MetricsRegistry;
class TraceContext;

/// Derived per-component utilization over a traced interval — the paper's
/// claims are *utilization* claims (keep the MXU busy, amortize the USB
/// link), and this report turns the raw trace/metrics streams into exactly
/// those numbers: occupancy and achieved-vs-peak rates instead of raw
/// timings. Pure derivation: computing a profile reads the recorded spans
/// and counters and never feeds back into any simulated result.
///
/// All `*_utilization` / `*_occupancy` / `*_rate` / `*_fraction` fields are
/// in [0, 1] by construction when the inputs reconcile (busy <= interval,
/// hits + misses == lookups); the obs_test reconciliation suite asserts
/// this end-to-end.
struct ProfileReport {
  // ---- traced interval ----
  SimDuration interval;  ///< max span end across all tracks (>= cursor)
  std::size_t trace_events = 0;
  std::size_t trace_dropped = 0;

  // ---- systolic MXU (Device track) ----
  SimDuration mxu_busy;           ///< summed Device-track span time
  double mxu_occupancy = 0.0;     ///< busy / interval
  std::uint64_t device_macs = 0;  ///< int8 MACs executed on the array
  double achieved_macs_per_s = 0.0;  ///< device_macs / busy
  double peak_macs_per_s = 0.0;      ///< rows * cols * frequency (0 if unknown)
  double mxu_efficiency = 0.0;       ///< achieved / peak

  // ---- USB link (Link track) ----
  SimDuration link_busy;
  double link_utilization = 0.0;  ///< busy / interval
  std::uint64_t link_bytes = 0;
  std::uint64_t link_transfers = 0;
  double effective_bandwidth_bytes_per_s = 0.0;   ///< bytes / busy
  double configured_bandwidth_bytes_per_s = 0.0;  ///< bulk-rate config (0 if unknown)
  double link_efficiency = 0.0;  ///< effective / configured (overheads eat the rest)

  // ---- host CPU (Host track, simulated) ----
  SimDuration host_busy;
  double host_utilization = 0.0;

  // ---- on-chip parameter cache ----
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;  ///< hits / lookups
  double sram_capacity_bytes = 0.0;
  double sram_peak_bytes = 0.0;      ///< gauge watermark of sram.used_bytes
  double sram_peak_fraction = 0.0;   ///< peak / capacity

  // ---- host thread pool (wall-clock, from parallel::PoolStats) ----
  parallel::PoolStats pool;      ///< raw accumulators for the profiled window
  std::size_t pool_lanes = 0;    ///< resolved pool size (0 if not supplied)
  double pool_busy_fraction = 0.0;  ///< busy / (wall * lanes)
  double pool_speedup = 0.0;        ///< busy / wall (achieved parallel speedup)

  // ---- derived energy (informational) ----
  // Coarse component joules at the *default* `PowerProfile`: each traced
  // track's busy time priced at its stage watts, plus idle watts for the
  // un-busy remainder of the interval. This is a profiler-level estimate
  // (tracks can overlap under pipelining) and is NOT part of the exact
  // picojoule conservation contract — that lives in `obs::EnergyAccountant`.
  double energy_mxu_joules = 0.0;   ///< mxu_busy * mxu_active_watts
  double energy_link_joules = 0.0;  ///< link_busy * usb_link_watts
  double energy_host_joules = 0.0;  ///< host_busy * host_busy_watts
  double energy_idle_joules = 0.0;  ///< max(0, interval - busy) * idle_watts
  double energy_total_joules = 0.0;
  double energy_watts_avg = 0.0;  ///< total / interval

  // ---- resilient executor ----
  std::uint64_t executor_invocations = 0;  ///< tpu.invocations
  std::uint64_t executor_retries = 0;      ///< resilient.invoke_retries
  std::uint64_t executor_device_faults = 0;
  std::uint64_t executor_fallback_samples = 0;
  std::uint64_t executor_samples = 0;  ///< infer.samples (0 outside inference)
  double retry_rate = 0.0;     ///< retries per device invocation (can exceed 1)
  double fallback_rate = 0.0;  ///< fallback samples / inference samples

  /// Nested-object JSON (`{"interval_s": ..., "mxu": {...}, ...}`).
  std::string to_json() const;

  /// Aligned human-readable table (what `hdc --profile` prints).
  std::string to_table() const;
};

/// Derives the report from a recorded trace and its companion metrics.
/// `pool`/`pool_lanes` optionally attach wall-clock thread-pool accounting
/// for the profiled window (pass the difference of two
/// `parallel::pool_stats()` snapshots); null leaves the pool section zero.
ProfileReport compute_profile(const TraceContext& trace, const MetricsRegistry& metrics,
                              const parallel::PoolStats* pool = nullptr,
                              std::size_t pool_lanes = 0);

}  // namespace hdc::obs
