#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/byte_io.hpp"
#include "common/sim_time.hpp"
#include "obs/monitor.hpp"
#include "tensor/matrix.hpp"

namespace hdc::obs {

/// Shape of the model-quality monitor. Like `MonitorConfig`, the serving
/// layer fills `num_classes` / `dim` / `window` from the session it attaches
/// to; the alarm thresholds and bin counts are user tunables.
struct ModelStatsConfig {
  std::uint32_t num_classes = 0;  ///< required: sizes confusion/calibration
  /// Encoded hypervector width for per-dimension discriminability; 0
  /// disables dimension stats (fleet aggregates use 0 because tenants encode
  /// with different seeds, so their dimensions are not comparable).
  std::uint32_t dim = 0;
  WindowConfig window;  ///< confusion-matrix window (matches the monitor's)
  /// The per-dimension ring keeps `dim_buckets` coarser slots over the same
  /// span, bounding memory at dim_buckets x (num_classes + 2) x dim doubles.
  std::size_t dim_buckets = 4;
  std::size_t calibration_bins = 10;
  std::size_t top_pairs = 3;   ///< confusable pairs exported per snapshot
  std::size_t bottom_dims = 8; ///< least-discriminative dims exported
  /// "class_error" fires while the worst per-class windowed error rate
  /// (classes with >= min_class_samples windowed true-label samples) exceeds
  /// this.
  double alarm_class_error_rate = 0.75;
  /// "confusion_pair" fires while the worst windowed off-diagonal fraction
  /// P(pred = b | true = a) exceeds this.
  double alarm_confusion_pair = 0.5;
  std::uint64_t min_class_samples = 16;
  /// A class-vector entry counts as saturated when |v| >= band * row absmax
  /// (mass-concentration proxy: near 1.0 when a few dimensions dominate).
  double saturation_band = 0.5;

  void validate() const;
};

/// Point-in-time view of the model-quality monitor. Renders as the `model`
/// object inside hdc-monitor-v1 snapshots (deterministic bytes for a fixed
/// config/seed), as `model.*` entries in the flat perfdiff gate map, and as
/// `hdc_model_*` Prometheus families.
struct ModelStatsSnapshot {
  SimDuration at;
  std::uint32_t num_classes = 0;
  std::uint32_t dim = 0;

  // Lifetime conservation triple (pinned by `hdc_modelq
  // --assert-conservation`): confusion row sums == class_served entries ==
  // per-class served samples, and both sum to samples_total exactly.
  std::uint64_t samples_total = 0;
  std::vector<std::uint64_t> confusion;     ///< C x C row-major, row = true label
  std::vector<std::uint64_t> class_served;  ///< per true label

  // Windowed prequential view.
  std::uint64_t window_samples = 0;
  std::vector<std::uint64_t> window_confusion;  ///< C x C row-major
  std::vector<double> window_recall;     ///< diag / row sum (0 on empty row)
  std::vector<double> window_precision;  ///< diag / column sum (0 on empty col)
  double window_accuracy = 0.0;
  struct ConfusionPair {
    std::uint32_t actual = 0;
    std::uint32_t predicted = 0;
    std::uint64_t count = 0;
    double fraction = 0.0;  ///< count / windowed row sum of `actual`
  };
  std::vector<ConfusionPair> top_pairs;  ///< count-descending off-diagonal

  // Lifetime calibration curve: confidence = (top1 + 1) / 2 clamped to
  // [0, 1] (cosine scores live in [-1, 1]), binned uniformly.
  struct CalibrationBin {
    std::uint64_t count = 0;
    std::uint64_t correct = 0;
    double confidence_sum = 0.0;
  };
  std::vector<CalibrationBin> calibration;
  double ece = 0.0;  ///< expected calibration error, sum |acc_b - conf_b| * n_b / N

  // Class-vector health of the most recently observed model.
  double norm_min = 0.0;
  double norm_mean = 0.0;
  double saturation_fraction = 0.0;
  /// Pairwise cosine separation 1 - cos(a, b): higher = classes further
  /// apart in HD space.
  double separation_min = 0.0;
  double separation_mean = 0.0;
  std::uint64_t model_refreshes = 0;

  // Per-dimension discriminability (between-class / within-class variance
  // over the sliding dim window); the bottom of the ranking is what a
  // DistHD-style regeneration pass would retire first.
  std::uint64_t dim_window_samples = 0;
  double dim_score_mean = 0.0;
  struct DimScore {
    std::uint32_t dim = 0;
    double score = 0.0;
  };
  std::vector<DimScore> bottom_dims;  ///< ascending score

  struct AlarmState {
    std::string name;
    bool firing = false;
    std::uint64_t fired_total = 0;
    double value = 0.0;
    double threshold = 0.0;
    std::string detail;  ///< culprit of the last evaluation ("class=3", "pair=2->5")
  };
  std::vector<AlarmState> alarms;
  bool quarantined = false;
  std::uint64_t suppressed_alarms_total = 0;

  /// The `"model"` JSON object (deterministic bytes).
  std::string to_json() const;
  /// `,"model.x":{...}` gate entries for the flat hdc-bench-v1 metrics map
  /// (each entry carries its leading comma so the owner can append the run
  /// inside an already-open map).
  std::string metrics_json() const;
  /// `hdc_model_*` Prometheus families.
  std::string to_prometheus() const;
};

/// Deterministic, simulated-time model-quality monitor: windowed confusion
/// matrix with per-class prequential recall/precision and top-K confusable
/// pairs, a calibration curve over top-1 similarity with ECE, class-vector
/// health from the live `HdModel`, and incremental per-dimension
/// discriminability scores ranking the dimensions DistHD-style regeneration
/// would retire. Strictly observational, like `ServingMonitor`: it receives
/// copies of values the serving path already computed and never feeds
/// anything back.
///
/// Alarms ("class_error" on per-class accuracy collapse, "confusion_pair" on
/// a dominant off-diagonal cell) are edge-triggered, carry the culprit in
/// `AlarmEvent::detail`, and route through the same quarantine
/// suppress-and-summarize gate as the serving monitor.
class ModelQualityStats {
 public:
  explicit ModelQualityStats(ModelStatsConfig config);

  const ModelStatsConfig& config() const noexcept { return config_; }

  /// One served sample: endpoint prediction, true (prequential) label, and
  /// the host scorer's top-1 similarity, stamped with its simulated
  /// completion time. Conservation contract: record() is called exactly once
  /// per *served* sample (never for shed/expired ones), so confusion row
  /// sums, class_served and samples_total stay exactly equal to the serving
  /// layer's per-class served counts.
  struct Sample {
    SimDuration at;
    std::uint32_t predicted = 0;
    std::uint32_t label = 0;
    double top1 = 0.0;  ///< top-1 similarity of the scoring model, in [-1, 1]
    std::int64_t request_id = -1;
  };
  void record(const Sample& sample);

  /// Folds one encoded hypervector into the sliding per-dimension
  /// discriminability window. No-op when `config.dim == 0`. Kept separate
  /// from record() because the fleet aggregate records outcomes without
  /// comparable encodings.
  void record_dimensions(SimDuration at, std::uint32_t label,
                         std::span<const float> encoded);

  /// Recomputes class-vector health from a (re)deployed model. Rejects a
  /// class-count (and, when dimension stats are enabled, width) mismatch
  /// instead of mis-indexing per-class state.
  void observe_model(const tensor::MatrixF& class_hypervectors);

  /// Mirrors `ServingMonitor::set_quarantined` (suppress-and-summarize).
  void set_quarantined(bool quarantined, SimDuration at);
  bool quarantined() const noexcept { return gate_.quarantined(); }
  std::uint64_t suppressed_fires_total() const noexcept { return gate_.suppressed_total(); }

  std::uint64_t samples_total() const noexcept { return samples_total_; }
  const std::vector<AlarmEvent>& events() const noexcept { return events_; }
  bool alarm_firing(std::string_view name) const;
  std::uint64_t alarm_fired_total(std::string_view name) const;

  ModelStatsSnapshot snapshot(SimDuration now);

  /// Exact-state round-trip for the serve checkpoint (doubles bit-exact):
  /// a restored instance's subsequent snapshots and alarm edges are
  /// byte-identical to one that was never serialized.
  void serialize(ByteWriter& writer) const;
  static ModelQualityStats deserialize(ByteReader& reader);

 private:
  /// Per-slot sufficient statistics for the discriminability ratio: per-class
  /// and overall sums plus per-dim sum of squares over the slot's samples.
  struct DimSlot {
    std::vector<double> class_sums;  ///< num_classes x dim row-major
    std::vector<double> sums;        ///< dim
    std::vector<double> sumsq;       ///< dim
    std::vector<std::uint64_t> counts;  ///< per class
  };

  void evaluate_alarms(SimDuration now, std::int64_t request_id);
  void push_event(const AlarmEvent& event);
  const ThresholdAlarm* find_alarm(std::string_view name) const;
  std::vector<std::uint64_t> merged_window_confusion(SimDuration now);

  ModelStatsConfig config_;

  detail::BucketRing<std::vector<std::uint64_t>> window_confusion_;
  std::optional<detail::BucketRing<DimSlot>> dims_;  ///< engaged when dim > 0

  std::vector<std::uint64_t> confusion_;     ///< lifetime C x C
  std::vector<std::uint64_t> class_served_;  ///< lifetime per true label
  std::vector<ModelStatsSnapshot::CalibrationBin> calibration_;
  std::uint64_t samples_total_ = 0;

  double norm_min_ = 0.0;
  double norm_mean_ = 0.0;
  double saturation_ = 0.0;
  double separation_min_ = 0.0;
  double separation_mean_ = 0.0;
  std::uint64_t model_refreshes_ = 0;

  ThresholdAlarm alarm_class_error_;
  ThresholdAlarm alarm_pair_;
  std::string class_error_detail_;  ///< culprit of the last evaluation
  std::string pair_detail_;
  std::vector<AlarmEvent> events_;
  QuarantineGate gate_;
};

}  // namespace hdc::obs
