#include "obs/energy.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace hdc::obs {

namespace {

constexpr const char* kEnergyBudgetAlarm = "energy_budget";

}  // namespace

const char* component_name(EnergyComponent component) noexcept {
  switch (component) {
    case EnergyComponent::kMxuActive: return "mxu_active";
    case EnergyComponent::kUsbLink: return "usb_link";
    case EnergyComponent::kSramSwap: return "sram_swap";
    case EnergyComponent::kHostBusy: return "host_busy";
    case EnergyComponent::kRetryWaste: return "retry_waste";
    case EnergyComponent::kIdle: return "idle";
  }
  return "unknown";
}

EnergyComponent stage_component(Stage stage) noexcept {
  switch (stage) {
    case Stage::kDevice: return EnergyComponent::kMxuActive;
    case Stage::kTransfer: return EnergyComponent::kUsbLink;
    case Stage::kSwap: return EnergyComponent::kSramSwap;
    case Stage::kDeviceHost:
    case Stage::kHost:
    case Stage::kUpdate: return EnergyComponent::kHostBusy;
    case Stage::kBackoff: return EnergyComponent::kRetryWaste;
    case Stage::kQueueWait:
    case Stage::kBatchWait:
    case Stage::kOther: return EnergyComponent::kIdle;
  }
  return EnergyComponent::kIdle;
}

RequestEnergy attribute_energy(const RequestAttribution& attribution,
                               const PowerProfile& profile) {
  RequestEnergy energy;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const double joules =
        profile.stage_watts(stage) * attribution.stages[i].to_seconds();
    energy.stage_pj[i] = static_cast<std::int64_t>(std::llround(joules * 1e12));
  }
  return energy;
}

void EnergyConfig::validate() const {
  profile.validate();
  window.validate();
  HDC_CHECK(ewma_tau_s >= 0.0, "energy EWMA time constant must be >= 0");
}

EnergyAccountant::EnergyAccountant(EnergyConfig config)
    : config_(config),
      window_(config.window, WindowSlot{}),
      watts_ewma_(config.ewma_tau_s > 0.0 ? config.ewma_tau_s
                                          : config.window.span.to_seconds() / 4.0),
      budget_alarm_(kEnergyBudgetAlarm, config.alarm_joules_per_inference) {
  config_.validate();
}

RequestEnergy EnergyAccountant::record(const Request& request) {
  const RequestEnergy energy = attribute_energy(request.attribution, config_.profile);
  const std::int64_t total = energy.total_pj();

  total_pj_ += total;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    stage_pj_[i] += energy.stage_pj[i];
  }
  switch (request.outcome) {
    case RequestOutcome::kServed: served_pj_ += total; break;
    case RequestOutcome::kShed: shed_pj_ += total; break;
    case RequestOutcome::kExpired: expired_pj_ += total; break;
  }
  if (request.degraded && request.outcome == RequestOutcome::kServed) {
    degraded_pj_ += total;
  }
  ++requests_total_;
  samples_served_ += request.outcome == RequestOutcome::kServed ? request.samples : 0;

  WindowSlot& slot = window_.at(request.at);
  slot.pj += total;
  if (request.outcome == RequestOutcome::kServed) {
    slot.samples += request.samples;
  }

  const double elapsed_s = request.attribution.total().to_seconds();
  if (elapsed_s > 0.0) {
    watts_ewma_.observe(request.at,
                        static_cast<double>(total) * 1e-12 / elapsed_s);
  }

  if (config_.alarm_joules_per_inference > 0.0) {
    std::int64_t window_pj = 0;
    std::uint64_t window_samples = 0;
    for (const WindowSlot& s : window_.slots()) {
      window_pj += s.pj;
      window_samples += s.samples;
    }
    if (window_samples >= config_.min_samples) {
      const double jpi = static_cast<double>(window_pj) * 1e-12 /
                         static_cast<double>(window_samples);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "jpi=%.6g", jpi);
      budget_detail_ = buf;
      std::optional<AlarmEvent> event = budget_alarm_.update(request.at, jpi);
      if (event.has_value()) {
        event->exemplar_request_id = request.request_id;
        event->detail = budget_detail_;
      }
      gate_.dispatch(std::move(event),
                     [this](const AlarmEvent& e) { push_event(e); });
    }
  }
  return energy;
}

void EnergyAccountant::set_quarantined(bool quarantined, SimDuration at) {
  gate_.set_quarantined(
      quarantined, at,
      [this](std::string_view name) { return find_alarm(name); },
      [this](const AlarmEvent& event) { push_event(event); });
}

void EnergyAccountant::push_event(const AlarmEvent& event) {
  events_.push_back(event);
  log_alarm_event(event);
}

const ThresholdAlarm* EnergyAccountant::find_alarm(std::string_view name) const {
  return budget_alarm_.name() == name ? &budget_alarm_ : nullptr;
}

EnergySnapshot EnergyAccountant::snapshot(SimDuration now) {
  EnergySnapshot snap;
  snap.at = now;
  snap.profile = config_.profile;

  snap.total_pj = total_pj_;
  snap.stage_pj = stage_pj_;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const std::size_t c =
        static_cast<std::size_t>(stage_component(static_cast<Stage>(i)));
    snap.component_pj[c] += stage_pj_[i];
  }
  snap.served_pj = served_pj_;
  snap.shed_pj = shed_pj_;
  snap.expired_pj = expired_pj_;
  snap.degraded_pj = degraded_pj_;
  snap.requests_total = requests_total_;
  snap.samples_served = samples_served_;

  window_.advance_to(now);
  for (const WindowSlot& slot : window_.slots()) {
    snap.window_pj += slot.pj;
    snap.window_samples += slot.samples;
  }
  snap.window_joules_per_inference =
      snap.window_samples == 0
          ? 0.0
          : static_cast<double>(snap.window_pj) * 1e-12 /
                static_cast<double>(snap.window_samples);

  snap.watts_ewma = watts_ewma_.value();

  snap.energy_budget.name = budget_alarm_.name();
  snap.energy_budget.firing = budget_alarm_.firing();
  snap.energy_budget.fired_total = budget_alarm_.fired_total();
  snap.energy_budget.value = budget_alarm_.last_value();
  snap.energy_budget.threshold = budget_alarm_.threshold();
  snap.energy_budget.detail = budget_detail_;
  snap.quarantined = gate_.quarantined();
  snap.suppressed_alarms_total = gate_.suppressed_total();
  return snap;
}

// -------------------------------------- checkpoint round-trip ---------------

namespace {

void write_alarm_state(ByteWriter& w, const ThresholdAlarm& alarm) {
  w.write<std::uint8_t>(alarm.firing() ? 1 : 0);
  w.write<double>(alarm.last_value());
  w.write<std::uint64_t>(alarm.fired_total());
}

void read_alarm_state(ByteReader& r, ThresholdAlarm& alarm) {
  const bool firing = r.read<std::uint8_t>() != 0;
  const double last_value = r.read<double>();
  const auto fired_total = r.read<std::uint64_t>();
  alarm.restore(firing, last_value, fired_total);
}

void write_ewma(ByteWriter& w, const Ewma& ewma) {
  const Ewma::State state = ewma.state();
  w.write<double>(state.value);
  w.write<double>(state.last.to_seconds());
  w.write<std::uint8_t>(state.seeded ? 1 : 0);
}

void read_ewma(ByteReader& r, Ewma& ewma) {
  Ewma::State state;
  state.value = r.read<double>();
  state.last = SimDuration::seconds(r.read<double>());
  state.seeded = r.read<std::uint8_t>() != 0;
  ewma.set_state(state);
}

}  // namespace

void EnergyAccountant::serialize(ByteWriter& writer) const {
  writer.write<double>(config_.profile.idle_watts);
  writer.write<double>(config_.profile.mxu_active_watts);
  writer.write<double>(config_.profile.link_watts);
  writer.write<double>(config_.profile.sram_write_watts);
  writer.write<double>(config_.profile.host_busy_watts);
  writer.write<double>(config_.profile.backoff_watts);
  writer.write<double>(config_.window.span.to_seconds());
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.window.buckets));
  writer.write<double>(config_.alarm_joules_per_inference);
  writer.write<std::uint64_t>(config_.min_samples);
  writer.write<double>(config_.ewma_tau_s);

  writer.write<std::uint64_t>(window_.cursor());
  for (const WindowSlot& slot : window_.slots()) {
    writer.write<std::int64_t>(slot.pj);
    writer.write<std::uint64_t>(slot.samples);
  }

  writer.write<std::int64_t>(total_pj_);
  for (const std::int64_t pj : stage_pj_) {
    writer.write<std::int64_t>(pj);
  }
  writer.write<std::int64_t>(served_pj_);
  writer.write<std::int64_t>(shed_pj_);
  writer.write<std::int64_t>(expired_pj_);
  writer.write<std::int64_t>(degraded_pj_);
  writer.write<std::uint64_t>(requests_total_);
  writer.write<std::uint64_t>(samples_served_);

  write_ewma(writer, watts_ewma_);
  write_alarm_state(writer, budget_alarm_);
  writer.write_string(budget_detail_);
  detail::write_alarm_events(writer, events_);
  gate_.serialize(writer);
}

EnergyAccountant EnergyAccountant::deserialize(ByteReader& reader) {
  EnergyConfig config;
  config.profile.idle_watts = reader.read<double>();
  config.profile.mxu_active_watts = reader.read<double>();
  config.profile.link_watts = reader.read<double>();
  config.profile.sram_write_watts = reader.read<double>();
  config.profile.host_busy_watts = reader.read<double>();
  config.profile.backoff_watts = reader.read<double>();
  config.window.span = SimDuration::seconds(reader.read<double>());
  config.window.buckets = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.alarm_joules_per_inference = reader.read<double>();
  config.min_samples = reader.read<std::uint64_t>();
  config.ewma_tau_s = reader.read<double>();

  EnergyAccountant accountant(config);
  accountant.window_.set_cursor(reader.read<std::uint64_t>());
  for (WindowSlot& slot : accountant.window_.slots_mutable()) {
    slot.pj = reader.read<std::int64_t>();
    slot.samples = reader.read<std::uint64_t>();
  }

  accountant.total_pj_ = reader.read<std::int64_t>();
  for (std::int64_t& pj : accountant.stage_pj_) {
    pj = reader.read<std::int64_t>();
  }
  accountant.served_pj_ = reader.read<std::int64_t>();
  accountant.shed_pj_ = reader.read<std::int64_t>();
  accountant.expired_pj_ = reader.read<std::int64_t>();
  accountant.degraded_pj_ = reader.read<std::int64_t>();
  accountant.requests_total_ = reader.read<std::uint64_t>();
  accountant.samples_served_ = reader.read<std::uint64_t>();

  read_ewma(reader, accountant.watts_ewma_);
  read_alarm_state(reader, accountant.budget_alarm_);
  accountant.budget_detail_ = reader.read_string();
  accountant.events_ = detail::read_alarm_events(reader);
  accountant.gate_.restore(reader);
  return accountant;
}

// --------------------------------------------- snapshot rendering -----------

namespace {

void append_field(std::string& out, const char* key, double value, bool leading_comma) {
  if (leading_comma) {
    out.push_back(',');
  }
  detail::append_json_string(out, key);
  out.push_back(':');
  detail::append_json_number(out, value);
}

/// Picojoule ledgers render as exact integers (no float formatting) so
/// `hdc_energyq --assert-conservation` re-verifies sums without parsing slop;
/// |pj| stays far below 2^53, so a double-based JSON parser recovers the
/// integer exactly.
void append_pj(std::string& out, const char* key, std::int64_t pj, bool leading_comma) {
  if (leading_comma) {
    out.push_back(',');
  }
  detail::append_json_string(out, key);
  out.push_back(':');
  out += std::to_string(pj);
}

void prom_line(std::string& out, const char* family, const std::string& labels,
               double value) {
  char buf[224];
  if (labels.empty()) {
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", family, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s{%s} %.9g\n", family, labels.c_str(), value);
  }
  out += buf;
}

void prom_header(std::string& out, const char* family, const char* type,
                 const char* help) {
  out += "# HELP ";
  out += family;
  out.push_back(' ');
  out += help;
  out += "\n# TYPE ";
  out += family;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

void append_gate_metric(std::string& out, const char* name, double value,
                        const char* unit, const char* kind, const char* better) {
  out.push_back(',');
  detail::append_json_string(out, name);
  out += ":{\"value\":";
  detail::append_json_number(out, value);
  out += ",\"unit\":";
  detail::append_json_string(out, unit);
  out += ",\"kind\":";
  detail::append_json_string(out, kind);
  out += ",\"better\":";
  detail::append_json_string(out, better);
  out.push_back('}');
}

}  // namespace

std::string EnergySnapshot::to_json() const {
  std::string out;
  out += "{\"schema\":\"hdc-energy-v1\"";
  append_pj(out, "total_pj", total_pj, true);
  append_field(out, "total_joules", total_joules(), true);

  out += ",\"profile\":{";
  append_field(out, "idle_watts", profile.idle_watts, false);
  append_field(out, "mxu_active_watts", profile.mxu_active_watts, true);
  append_field(out, "link_watts", profile.link_watts, true);
  append_field(out, "sram_write_watts", profile.sram_write_watts, true);
  append_field(out, "host_busy_watts", profile.host_busy_watts, true);
  append_field(out, "backoff_watts", profile.backoff_watts, true);
  out += "}";

  out += ",\"stages\":{";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    append_pj(out, stage_name(static_cast<Stage>(i)), stage_pj[i], i > 0);
  }
  out += "}";

  out += ",\"components\":{";
  for (std::size_t i = 0; i < kNumEnergyComponents; ++i) {
    append_pj(out, component_name(static_cast<EnergyComponent>(i)), component_pj[i],
              i > 0);
  }
  out += "}";

  out += ",\"outcomes\":{";
  append_pj(out, "served_pj", served_pj, false);
  append_pj(out, "shed_pj", shed_pj, true);
  append_pj(out, "expired_pj", expired_pj, true);
  append_pj(out, "degraded_pj", degraded_pj, true);
  out += "}";

  out += ",\"requests\":" + std::to_string(requests_total);
  out += ",\"samples_served\":" + std::to_string(samples_served);

  out += ",\"window\":{";
  append_pj(out, "pj", window_pj, false);
  out += ",\"samples\":" + std::to_string(window_samples);
  append_field(out, "joules_per_inference", window_joules_per_inference, true);
  out += "}";

  append_field(out, "watts_ewma", watts_ewma, true);

  out += ",\"alarms\":{";
  detail::append_json_string(out, energy_budget.name);
  out += ":{\"firing\":";
  out += energy_budget.firing ? "true" : "false";
  out += ",\"fired_total\":" + std::to_string(energy_budget.fired_total);
  append_field(out, "value", energy_budget.value, true);
  append_field(out, "threshold", energy_budget.threshold, true);
  out += ",\"detail\":";
  detail::append_json_string(out, energy_budget.detail);
  out += "}}";

  out += ",\"quarantined\":";
  out += quarantined ? "true" : "false";
  out += ",\"suppressed_alarms_total\":" + std::to_string(suppressed_alarms_total);
  out += "}";
  return out;
}

std::string EnergySnapshot::metrics_json() const {
  std::string out;
  append_gate_metric(out, "energy.joules_per_inference", window_joules_per_inference,
                     "J", "sim", "lower");
  append_gate_metric(out, "energy.total_joules", total_joules(), "J", "info", "lower");
  append_gate_metric(out, "energy.watts_ewma", watts_ewma, "W", "info", "lower");
  append_gate_metric(out, "energy.alarms.energy_budget.fired_total",
                     static_cast<double>(energy_budget.fired_total), "", "info",
                     "lower");
  return out;
}

std::string EnergySnapshot::to_prometheus() const {
  std::string out;
  prom_header(out, "hdc_energy_joules_total", "counter",
              "Total attributed energy (lifetime, simulated)");
  prom_line(out, "hdc_energy_joules_total", "", total_joules());
  prom_header(out, "hdc_energy_component_joules_total", "counter",
              "Attributed energy per hardware component (lifetime, simulated)");
  for (std::size_t i = 0; i < kNumEnergyComponents; ++i) {
    prom_line(out, "hdc_energy_component_joules_total",
              "component=\"" +
                  std::string(component_name(static_cast<EnergyComponent>(i))) + "\"",
              static_cast<double>(component_pj[i]) * 1e-12);
  }
  prom_header(out, "hdc_energy_stage_joules_total", "counter",
              "Attributed energy per request stage (lifetime, simulated)");
  for (std::size_t i = 0; i < kNumStages; ++i) {
    prom_line(out, "hdc_energy_stage_joules_total",
              "stage=\"" + std::string(stage_name(static_cast<Stage>(i))) + "\"",
              static_cast<double>(stage_pj[i]) * 1e-12);
  }
  prom_header(out, "hdc_energy_outcome_joules_total", "counter",
              "Attributed energy per request outcome (lifetime, simulated)");
  prom_line(out, "hdc_energy_outcome_joules_total", "outcome=\"served\"",
            static_cast<double>(served_pj) * 1e-12);
  prom_line(out, "hdc_energy_outcome_joules_total", "outcome=\"shed\"",
            static_cast<double>(shed_pj) * 1e-12);
  prom_line(out, "hdc_energy_outcome_joules_total", "outcome=\"expired\"",
            static_cast<double>(expired_pj) * 1e-12);
  prom_header(out, "hdc_energy_joules_per_inference", "gauge",
              "Windowed joules per served inference (all-outcome numerator)");
  prom_line(out, "hdc_energy_joules_per_inference", "", window_joules_per_inference);
  prom_header(out, "hdc_energy_watts", "gauge",
              "EWMA of per-request average power draw");
  prom_line(out, "hdc_energy_watts", "", watts_ewma);
  prom_header(out, "hdc_energy_alarm_firing", "gauge",
              "1 while the energy alarm condition holds");
  prom_line(out, "hdc_energy_alarm_firing", "alarm=\"" + energy_budget.name + "\"",
            energy_budget.firing ? 1.0 : 0.0);
  prom_header(out, "hdc_energy_alarm_fired_total", "counter",
              "Edge-triggered energy alarm fire count");
  prom_line(out, "hdc_energy_alarm_fired_total",
            "alarm=\"" + energy_budget.name + "\"",
            static_cast<double>(energy_budget.fired_total));
  return out;
}

}  // namespace hdc::obs
