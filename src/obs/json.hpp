#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace hdc::obs::detail {

/// Appends `text` to `out` as a double-quoted JSON string with the mandatory
/// escapes (quote, backslash, control characters).
inline void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Appends a finite double as a JSON number (fixed notation keeps full
/// microsecond-level precision for timestamps without exponent parsing
/// surprises in downstream tools).
inline void append_json_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

/// Appends a double with round-trip precision (%.17g). Used where downstream
/// tools re-verify bit-exact arithmetic (request-trace attribution records);
/// the shorter %.9g form stays the default for human-facing telemetry.
inline void append_json_number_exact(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace hdc::obs::detail
