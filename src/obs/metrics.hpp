#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/sim_time.hpp"

namespace hdc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point-in-time value, plus the high-water mark across all
/// writes (e.g. peak on-chip SRAM residency while `value` tracks the
/// current residency).
class Gauge {
 public:
  void set(double value) noexcept {
    value_ = value;
    if (!written_ || value > max_) {
      max_ = value;
    }
    written_ = true;
  }
  double value() const noexcept { return value_; }
  double max() const noexcept { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool written_ = false;
};

/// Simulated-time histogram with fixed log-scale buckets: one bucket per
/// decade from 1 ns to 1000 s plus an overflow bucket, so every component in
/// the system bins latencies identically and two runs' histograms can be
/// compared bucket-for-bucket.
class DurationHistogram {
 public:
  /// Upper bounds (inclusive) of the finite buckets: 1 ns, 10 ns, ... 1000 s.
  static constexpr std::size_t kFiniteBuckets = 13;
  /// kFiniteBuckets finite buckets + 1 overflow bucket.
  static constexpr std::size_t kBuckets = kFiniteBuckets + 1;

  /// Upper bound of finite bucket `i` in seconds (1e-9 * 10^i).
  static double bucket_upper_seconds(std::size_t i);

  void observe(SimDuration value, std::uint64_t count = 1);

  std::uint64_t count() const noexcept { return count_; }
  SimDuration sum() const noexcept { return sum_; }
  /// min/max/mean are only meaningful when `count() > 0`; with zero
  /// observations they return default-constructed SimDuration, and the
  /// JSON/table exporters emit `null` / `n=0` instead of fake zeros.
  SimDuration min() const noexcept { return min_; }
  SimDuration max() const noexcept { return max_; }
  SimDuration mean() const;
  /// Bucket-interpolated quantile (q in [0, 1]): finds the bucket holding
  /// the rank-q observation and interpolates linearly inside it, clamped to
  /// the observed [min, max]. Requires `count() > 0`.
  SimDuration quantile(double q) const;
  std::uint64_t bucket_count(std::size_t i) const { return buckets_.at(i); }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  SimDuration sum_;
  SimDuration min_;
  SimDuration max_;
};

/// Named metrics published by the simulated components (TPU device, USB
/// link, fault injector, resilient executor, training loop). Handles
/// returned by `counter`/`gauge`/`histogram` stay valid for the registry's
/// lifetime; lookups create the metric on first use, so publishing sites
/// never need registration boilerplate.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  DurationHistogram& histogram(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, DurationHistogram, std::less<>>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// JSON dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Histograms export count/sum/min/max/mean (seconds) and per-bucket
  /// counts keyed by their upper bound.
  std::string to_json() const;

  /// Human-readable table with aligned columns (the CLI `--metrics`
  /// pretty-printer). Durations render with auto-selected units.
  std::string to_table() const;

 private:
  // std::less<> enables string_view lookups without temporary strings.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, DurationHistogram, std::less<>> histograms_;
};

}  // namespace hdc::obs
