#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/sim_time.hpp"

namespace hdc::obs {

class MetricsRegistry;

/// Simulated component a trace event belongs to. Exported as one Chrome
/// trace "process" per track, so Perfetto lays the timeline out the way the
/// hardware is organized (host CPU / USB link / accelerator / orchestration).
enum class Track : std::uint8_t {
  kHost = 0,      ///< host CPU: fallback ops, dequantize, CPU inference
  kLink = 1,      ///< USB bulk pipe: activation + parameter traffic
  kDevice = 2,    ///< systolic MXU + activation unit
  kExecutor = 3,  ///< batch orchestration: resilient retry, pipelining
  kTrainer = 4,   ///< training-loop phases (encode / update / model-gen)
};
inline constexpr std::size_t kNumTracks = 5;

/// Human-readable process name used in the Chrome trace metadata.
const char* track_name(Track track);

/// One typed key/value annotation on a trace event.
struct TraceArg {
  using Value = std::variant<std::int64_t, double, std::string>;

  template <typename T>
    requires std::is_integral_v<T>
  TraceArg(std::string_view k, T v) : key(k), value(static_cast<std::int64_t>(v)) {}
  template <typename T>
    requires std::is_floating_point_v<T>
  TraceArg(std::string_view k, T v) : key(k), value(static_cast<double>(v)) {}
  TraceArg(std::string_view k, std::string v) : key(k), value(std::move(v)) {}
  TraceArg(std::string_view k, const char* v) : key(k), value(std::string(v)) {}

  std::string key;
  Value value;
};

/// A recorded span (duration > 0 semantics) or instant event, positioned in
/// *simulated* time. The tracer never reads the host clock, so a given
/// workload always produces a bit-identical trace.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kInstant };

  Kind kind = Kind::kSpan;
  Track track = Track::kHost;
  std::string name;
  SimDuration start;
  SimDuration duration;  ///< zero for instants
  std::vector<TraceArg> args;
  /// Request the event belongs to (-1 outside any request scope). Stamped by
  /// `TraceContext::push` from the active `begin_request` scope and exported
  /// as a `"req"` arg, so a request's causal chain can be reassembled across
  /// host/link/device/executor tracks.
  std::int64_t request_id = -1;
};

struct TraceConfig {
  /// Hard cap on recorded events. Paper-scale runs (60k samples through the
  /// per-sample fault path) would otherwise emit multi-GB traces; beyond the
  /// cap events are counted in `dropped()` and discarded (a one-time WARN
  /// fires on the first drop), and the export notes the truncation.
  std::size_t max_events = 1u << 20;
};

/// Span/event recorder keyed to simulated time.
///
/// Threading convention: components receive a `TraceContext*` that is null
/// when tracing is disabled — every call site guards with `if (trace)`, so
/// the disabled path costs one pointer test and no behavioral change
/// (instrumentation only *reads* the numbers the cost models already
/// produced; it never feeds back into them).
///
/// `now()` is the shared timeline cursor: components emitting sequential
/// work call `span(...)`, which places the event at the cursor and advances
/// it by the span's duration, mirroring how the same durations accumulate
/// into `ExecutionStats`/`TrainTimings`. Overlapped work (the pipelined
/// streaming path) is placed explicitly with `span_at`.
class TraceContext {
 public:
  explicit TraceContext(TraceConfig config = {});

  const TraceConfig& config() const noexcept { return config_; }

  // ---- timeline cursor ----
  SimDuration now() const noexcept { return now_; }
  void set_now(SimDuration t) noexcept { now_ = t; }
  void advance(SimDuration d) noexcept { now_ += d; }

  // ---- request scoping ----
  /// Opens a request scope: every event pushed until `end_request` is stamped
  /// with `id`. Scopes do not nest (a new begin replaces the active id) —
  /// the serve loop handles one request at a time.
  void begin_request(std::uint64_t id) noexcept {
    request_id_ = static_cast<std::int64_t>(id);
  }
  void end_request() noexcept { request_id_ = -1; }
  /// Active request id, -1 when outside any request scope.
  std::int64_t active_request() const noexcept { return request_id_; }

  /// Records [now, now + duration) and advances the cursor.
  void span(Track track, std::string_view name, SimDuration duration,
            std::vector<TraceArg> args = {});

  /// Records [start, start + duration) without touching the cursor.
  void span_at(Track track, std::string_view name, SimDuration start,
               SimDuration duration, std::vector<TraceArg> args = {});

  /// Records an instant event at the cursor (cursor does not move).
  void instant(Track track, std::string_view name, std::vector<TraceArg> args = {});

  /// Records an instant event at an explicit time.
  void instant_at(Track track, std::string_view name, SimDuration at,
                  std::vector<TraceArg> args = {});

  // ---- companion metrics (optional) ----
  /// Components publish counters/histograms through the same handle they
  /// trace through; null when no registry is attached.
  MetricsRegistry* metrics() const noexcept { return metrics_; }
  void set_metrics(MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  // ---- inspection ----
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  /// Events discarded beyond `config().max_events`.
  std::size_t dropped() const noexcept { return dropped_; }

  /// Sum of recorded span durations whose name matches `name` exactly.
  SimDuration span_total(std::string_view name) const;

  // ---- export ----
  /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form),
  /// loadable in chrome://tracing and Perfetto. Timestamps are simulated
  /// microseconds; each Track exports as one process with a metadata name.
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace_json() const;

 private:
  void push(TraceEvent event);

  TraceConfig config_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
  bool drop_warned_ = false;
  SimDuration now_;
  std::int64_t request_id_ = -1;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace hdc::obs
