#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/byte_io.hpp"
#include "common/error.hpp"
#include "common/sim_time.hpp"
#include "obs/monitor.hpp"
#include "obs/request_trace.hpp"

namespace hdc::obs {

/// Whole-edge-node power draw per attribution stage, in watts. The profile
/// prices *simulated* time: energy is derived purely from the deterministic
/// `RequestAttribution` stage durations, so for a fixed config/seed every
/// joule figure reproduces bit-exactly across hosts.
///
/// The defaults describe the paper's Coral-class edge node (a ~15 W host CPU
/// profile driving a USB accelerator that adds ~2 W when active, with the
/// host able to drop to ~30% of its budget while a request merely waits):
/// they equal `from_components(15.0, 2.0, 0.3)`, which a test pins.
struct PowerProfile {
  double idle_watts = 4.5;        ///< queue/batch waits and untracked time
  double mxu_active_watts = 6.5;  ///< systolic-array execution (kDevice)
  double link_watts = 6.5;        ///< USB bus transfers (kTransfer)
  double sram_write_watts = 6.5;  ///< on-chip parameter writes (kSwap)
  double host_busy_watts = 15.0;  ///< host thread-pool busy (kDeviceHost/kHost/kUpdate)
  double backoff_watts = 6.5;     ///< retry/backoff waste (kBackoff)

  /// Derives a profile from the coarse `platform::EnergyModel` vocabulary:
  /// the host idles at `host_watts * host_idle_fraction`, accelerator-active
  /// stages add `tpu_active_watts` on top of that idle floor, and host-busy
  /// stages draw the full `host_watts`. Keeps the live telemetry reconcilable
  /// with the paper-facing `codesign_training` / `codesign_inference` costs.
  static constexpr PowerProfile from_components(double host_watts,
                                                double tpu_active_watts,
                                                double host_idle_fraction) {
    PowerProfile p;
    p.idle_watts = host_watts * host_idle_fraction;
    p.mxu_active_watts = p.idle_watts + tpu_active_watts;
    p.link_watts = p.mxu_active_watts;
    p.sram_write_watts = p.mxu_active_watts;
    p.host_busy_watts = host_watts;
    p.backoff_watts = p.mxu_active_watts;
    return p;
  }

  void validate() const {
    HDC_CHECK(idle_watts >= 0.0, "PowerProfile: idle_watts must be >= 0");
    HDC_CHECK(mxu_active_watts > 0.0, "PowerProfile: mxu_active_watts must be > 0");
    HDC_CHECK(link_watts > 0.0, "PowerProfile: link_watts must be > 0");
    HDC_CHECK(sram_write_watts > 0.0, "PowerProfile: sram_write_watts must be > 0");
    HDC_CHECK(host_busy_watts > 0.0, "PowerProfile: host_busy_watts must be > 0");
    HDC_CHECK(backoff_watts >= 0.0, "PowerProfile: backoff_watts must be >= 0");
  }

  /// Watts drawn while a request sits in `stage`.
  constexpr double stage_watts(Stage stage) const {
    switch (stage) {
      case Stage::kQueueWait:
      case Stage::kBatchWait:
      case Stage::kOther: return idle_watts;
      case Stage::kBackoff: return backoff_watts;
      case Stage::kSwap: return sram_write_watts;
      case Stage::kTransfer: return link_watts;
      case Stage::kDevice: return mxu_active_watts;
      case Stage::kDeviceHost:
      case Stage::kHost:
      case Stage::kUpdate: return host_busy_watts;
    }
    return idle_watts;
  }
};

/// Component rollup of the ten attribution stages: a partition, so component
/// joules sum *exactly* to total joules (same integer-picojoule atoms,
/// regrouped).
enum class EnergyComponent : std::uint8_t {
  kMxuActive = 0,  ///< kDevice
  kUsbLink,        ///< kTransfer
  kSramSwap,       ///< kSwap
  kHostBusy,       ///< kDeviceHost + kHost + kUpdate
  kRetryWaste,     ///< kBackoff
  kIdle,           ///< kQueueWait + kBatchWait + kOther
};
inline constexpr std::size_t kNumEnergyComponents = 6;

const char* component_name(EnergyComponent component) noexcept;
EnergyComponent stage_component(Stage stage) noexcept;

/// Per-request energy atoms. All conservation-bearing ledgers are integer
/// picojoules: `stage_pj[i] = llround(stage_watts * stage_seconds * 1e12)`.
/// Integer addition is exact under any regrouping, so component sums, outcome
/// sums and tenant-to-fleet sums all equal the total *bit-exactly* — no
/// floating-point reassociation caveats. Totals stay far below 2^53 pJ
/// (~9 kJ of simulated work), so the derived double joules (and JSON
/// round-trips through doubles) are exact too.
struct RequestEnergy {
  std::array<std::int64_t, kNumStages> stage_pj{};

  std::int64_t total_pj() const noexcept {
    std::int64_t sum = 0;
    for (const std::int64_t pj : stage_pj) sum += pj;
    return sum;
  }
  double total_joules() const noexcept { return static_cast<double>(total_pj()) * 1e-12; }
};

/// Prices one request's stage attribution under `profile`. Deterministic:
/// same attribution + profile => identical integer atoms, which is what lets
/// independent ledgers (per-shard, per-tenant, fleet) recompute a request's
/// energy and still HDC_CHECK-sum exactly.
RequestEnergy attribute_energy(const RequestAttribution& attribution,
                               const PowerProfile& profile);

/// Shape of the energy accountant. Like `MonitorConfig`, the serving layer
/// fills `window` from the session it attaches to; the profile and alarm
/// threshold are user tunables.
struct EnergyConfig {
  PowerProfile profile;
  WindowConfig window;  ///< joules-per-inference window (matches the monitor's)
  /// "energy_budget" fires while windowed joules-per-served-inference exceeds
  /// this; <= 0 disables the alarm.
  double alarm_joules_per_inference = 0.0;
  std::uint64_t min_samples = 32;  ///< served samples required before alarming
  /// Time constant of the watts EWMA; 0 derives window.span / 4.
  double ewma_tau_s = 0.0;

  void validate() const;
};

/// Point-in-time view of the energy accountant. Renders as the `energy`
/// object inside hdc-monitor-v1 snapshots (deterministic bytes), as
/// `energy.*` entries in the flat perfdiff gate map, and as `hdc_energy_*`
/// Prometheus families.
struct EnergySnapshot {
  SimDuration at;
  PowerProfile profile;

  // Lifetime conservation ledgers (pinned by `hdc_energyq
  // --assert-conservation`): stage_pj and component_pj are partitions of
  // total_pj; served + shed + expired == total; degraded is an overlay on
  // served (degraded requests were served).
  std::int64_t total_pj = 0;
  std::array<std::int64_t, kNumStages> stage_pj{};
  std::array<std::int64_t, kNumEnergyComponents> component_pj{};
  std::int64_t served_pj = 0;
  std::int64_t shed_pj = 0;
  std::int64_t expired_pj = 0;
  std::int64_t degraded_pj = 0;

  std::uint64_t requests_total = 0;
  std::uint64_t samples_served = 0;

  // Windowed figure of merit. The numerator counts *all* outcomes (shed and
  // expired requests burned real joules — waste is part of the cost), the
  // denominator only served samples.
  std::int64_t window_pj = 0;
  std::uint64_t window_samples = 0;
  double window_joules_per_inference = 0.0;

  double watts_ewma = 0.0;

  struct AlarmState {
    std::string name;
    bool firing = false;
    std::uint64_t fired_total = 0;
    double value = 0.0;
    double threshold = 0.0;
    std::string detail;
  };
  AlarmState energy_budget;
  bool quarantined = false;
  std::uint64_t suppressed_alarms_total = 0;

  double total_joules() const noexcept { return static_cast<double>(total_pj) * 1e-12; }

  /// The `"energy"` JSON object (deterministic bytes, schema hdc-energy-v1).
  /// Picojoule ledgers render as exact integers so downstream conservation
  /// checks re-verify them without float parsing slop.
  std::string to_json() const;
  /// `,"energy.x":{...}` gate entries for the flat hdc-bench-v1 metrics map.
  std::string metrics_json() const;
  /// `hdc_energy_*` Prometheus families.
  std::string to_prometheus() const;
};

/// Deterministic, simulated-time energy accountant: prices each request's
/// ten-stage attribution under a `PowerProfile` into integer-picojoule atoms,
/// folds them into lifetime stage/component/outcome ledgers, a windowed
/// joules-per-inference figure and a watts EWMA, and raises an edge-triggered
/// "energy_budget" alarm through the same quarantine suppress-and-summarize
/// gate as the serving monitor. Strictly observational, like
/// `ServingMonitor`: it receives copies of values the serving path already
/// computed and never feeds anything back.
class EnergyAccountant {
 public:
  explicit EnergyAccountant(EnergyConfig config);

  const EnergyConfig& config() const noexcept { return config_; }

  /// One finished request on any outcome path. `samples > 0` only for served
  /// requests; `degraded` marks a served-degraded request. Returns the priced
  /// atoms so callers can fold the *identical* integers into their own
  /// ledgers (per-shard, per-tenant) and keep exact sum equality with this
  /// accountant.
  struct Request {
    SimDuration at;
    RequestAttribution attribution;
    RequestOutcome outcome = RequestOutcome::kServed;
    std::uint64_t samples = 0;
    bool degraded = false;
    std::int64_t request_id = -1;
  };
  RequestEnergy record(const Request& request);

  /// Mirrors `ServingMonitor::set_quarantined` (suppress-and-summarize).
  void set_quarantined(bool quarantined, SimDuration at);
  bool quarantined() const noexcept { return gate_.quarantined(); }

  std::int64_t total_pj() const noexcept { return total_pj_; }
  std::uint64_t requests_total() const noexcept { return requests_total_; }
  const std::vector<AlarmEvent>& events() const noexcept { return events_; }
  bool alarm_firing() const noexcept { return budget_alarm_.firing(); }
  std::uint64_t alarm_fired_total() const noexcept { return budget_alarm_.fired_total(); }

  EnergySnapshot snapshot(SimDuration now);

  /// Exact-state round-trip for the serve checkpoint (doubles bit-exact):
  /// a restored instance's subsequent snapshots and alarm edges are
  /// byte-identical to one that was never serialized.
  void serialize(ByteWriter& writer) const;
  static EnergyAccountant deserialize(ByteReader& reader);

 private:
  struct WindowSlot {
    std::int64_t pj = 0;          ///< all outcomes — waste counts
    std::uint64_t samples = 0;    ///< served samples only
  };

  void push_event(const AlarmEvent& event);
  const ThresholdAlarm* find_alarm(std::string_view name) const;

  EnergyConfig config_;

  detail::BucketRing<WindowSlot> window_;

  std::int64_t total_pj_ = 0;
  std::array<std::int64_t, kNumStages> stage_pj_{};
  std::int64_t served_pj_ = 0;
  std::int64_t shed_pj_ = 0;
  std::int64_t expired_pj_ = 0;
  std::int64_t degraded_pj_ = 0;
  std::uint64_t requests_total_ = 0;
  std::uint64_t samples_served_ = 0;

  Ewma watts_ewma_;
  ThresholdAlarm budget_alarm_;
  std::string budget_detail_;  ///< culprit of the last evaluation
  std::vector<AlarmEvent> events_;
  QuarantineGate gate_;
};

}  // namespace hdc::obs
