#include "obs/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/json.hpp"

namespace hdc::obs {

void WindowConfig::validate() const {
  HDC_CHECK(span > SimDuration(), "window span must be positive");
  HDC_CHECK(buckets > 0, "window needs at least one bucket");
}

// ------------------------------------------------------- SlidingCounter ----

std::uint64_t SlidingCounter::sum(SimDuration now) {
  ring_.advance_to(now);
  std::uint64_t total = 0;
  for (const auto slot : ring_.slots()) {
    total += slot;
  }
  return total;
}

// ---------------------------------------------------------- SlidingMean ----

std::uint64_t SlidingMean::count(SimDuration now) {
  ring_.advance_to(now);
  std::uint64_t total = 0;
  for (const auto& slot : ring_.slots()) {
    total += slot.count;
  }
  return total;
}

double SlidingMean::mean(SimDuration now) {
  ring_.advance_to(now);
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& slot : ring_.slots()) {
    sum += slot.sum;
    n += slot.count;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

// ----------------------------------------------------- SlidingHistogram ----

std::size_t SlidingHistogram::bin_index(double seconds) {
  if (seconds < 1e-9) {
    return 0;  // underflow
  }
  const double f = (std::log10(seconds) - kMinExponent) * kBinsPerDecade;
  const auto finite = static_cast<std::size_t>(f);
  if (finite >= kFiniteBins) {
    return kBins - 1;  // overflow
  }
  return finite + 1;
}

double SlidingHistogram::bin_lower_seconds(std::size_t bin) {
  if (bin == 0) {
    return 0.0;
  }
  if (bin >= kBins - 1) {
    return std::pow(10.0, kMaxExponent);
  }
  return std::pow(10.0, kMinExponent +
                            static_cast<double>(bin - 1) / kBinsPerDecade);
}

double SlidingHistogram::bin_upper_seconds(std::size_t bin) {
  if (bin == 0) {
    return 1e-9;
  }
  if (bin >= kBins - 1) {
    return std::pow(10.0, kMaxExponent);  // clamped by the observed max anyway
  }
  return std::pow(10.0, kMinExponent + static_cast<double>(bin) / kBinsPerDecade);
}

void SlidingHistogram::observe(SimDuration t, SimDuration value) {
  Slot& slot = ring_.at(t);
  const double s = value.to_seconds();
  ++slot.bins[bin_index(s)];
  if (slot.count == 0 || s < slot.min_s) {
    slot.min_s = s;
  }
  if (slot.count == 0 || s > slot.max_s) {
    slot.max_s = s;
  }
  ++slot.count;
  slot.sum_s += s;
}

std::uint64_t SlidingHistogram::count(SimDuration now) {
  ring_.advance_to(now);
  std::uint64_t total = 0;
  for (const auto& slot : ring_.slots()) {
    total += slot.count;
  }
  return total;
}

SimDuration SlidingHistogram::mean(SimDuration now) {
  ring_.advance_to(now);
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& slot : ring_.slots()) {
    sum += slot.sum_s;
    n += slot.count;
  }
  return n == 0 ? SimDuration() : SimDuration::seconds(sum / static_cast<double>(n));
}

SimDuration SlidingHistogram::quantile(SimDuration now, double q) {
  ring_.advance_to(now);
  std::array<std::uint64_t, kBins> merged{};
  std::uint64_t total = 0;
  double win_min = 0.0;
  double win_max = 0.0;
  for (const auto& slot : ring_.slots()) {
    if (slot.count == 0) {
      continue;
    }
    for (std::size_t i = 0; i < kBins; ++i) {
      merged[i] += slot.bins[i];
    }
    if (total == 0 || slot.min_s < win_min) {
      win_min = slot.min_s;
    }
    if (total == 0 || slot.max_s > win_max) {
      win_max = slot.max_s;
    }
    total += slot.count;
  }
  if (total == 0) {
    return SimDuration();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t bin = 0; bin < kBins; ++bin) {
    if (merged[bin] == 0) {
      continue;
    }
    const auto before = static_cast<double>(cumulative);
    cumulative += merged[bin];
    if (rank < static_cast<double>(cumulative)) {
      const double frac = (rank - before + 0.5) / static_cast<double>(merged[bin]);
      const double lo = bin_lower_seconds(bin);
      const double hi = bin_upper_seconds(bin);
      const double value = std::clamp(lo + frac * (hi - lo), win_min, win_max);
      return SimDuration::seconds(value);
    }
  }
  return SimDuration::seconds(win_max);
}

// ------------------------------------------------------------------ Ewma ----

void Ewma::observe(SimDuration t, double value) {
  if (!seeded_) {
    value_ = value;
    last_ = t;
    seeded_ = true;
    return;
  }
  const double dt = std::max(0.0, (t - last_).to_seconds());
  const double alpha = 1.0 - std::exp(-dt / tau_s_);
  value_ += alpha * (value - value_);
  last_ = t;
}

// -------------------------------------------------------- ThresholdAlarm ----

std::optional<AlarmEvent> ThresholdAlarm::update(SimDuration t, double value) {
  last_value_ = value;
  const auto edge = [&](bool fired) {
    AlarmEvent event;
    event.alarm = name_;
    event.fired = fired;
    event.at = t;
    event.value = value;
    event.threshold = threshold_;
    return event;
  };
  if (!firing_ && value > threshold_) {
    firing_ = true;
    ++fired_total_;
    return edge(true);
  }
  if (firing_ && value <= threshold_) {
    firing_ = false;
    return edge(false);
  }
  return std::nullopt;
}

// --------------------------------------------------------- MonitorConfig ----

void MonitorConfig::validate() const {
  HDC_CHECK(num_classes > 0, "monitor needs the class count");
  window.validate();
  HDC_CHECK(slo_latency > SimDuration(), "SLO latency target must be positive");
  HDC_CHECK(slo_error_budget > 0.0 && slo_error_budget <= 1.0,
            "SLO error budget must be in (0, 1]");
  HDC_CHECK(alarm_burn_rate >= 0.0 && alarm_error_rate >= 0.0 &&
                alarm_fallback_rate >= 0.0 && alarm_drift_score >= 0.0 &&
                alarm_shed_rate >= 0.0,
            "alarm thresholds must be non-negative");
}

// -------------------------------------------------------- ServingMonitor ----

ServingMonitor::ServingMonitor(MonitorConfig config)
    : config_(config),
      tau_short_s_(config.ewma_tau_short_s > 0.0
                       ? config.ewma_tau_short_s
                       : config.window.span.to_seconds() / 4.0),
      tau_long_s_(config.ewma_tau_long_s > 0.0 ? config.ewma_tau_long_s
                                               : config.window.span.to_seconds() * 8.0),
      latency_(config.window),
      samples_(config.window),
      errors_(config.window),
      slo_violations_(config.window),
      transport_samples_(config.window),
      fallback_samples_(config.window),
      retries_(config.window),
      offered_(config.window),
      shed_(config.window),
      expired_(config.window),
      degraded_(config.window),
      margin_(config.window),
      class_counts_(config.window, std::vector<std::uint64_t>(config.num_classes, 0)),
      slowest_(config.window, SlowestSlot{}),
      attribution_(config.window, std::array<double, kNumStages>{}),
      ewma_latency_(tau_short_s_),
      ewma_margin_(tau_short_s_),
      ewma_accuracy_(tau_short_s_),
      margin_reference_(tau_long_s_),
      alarm_latency_("latency_slo", config.alarm_burn_rate),
      alarm_error_("error_rate", config.alarm_error_rate),
      alarm_fallback_("fallback_rate", config.alarm_fallback_rate),
      alarm_drift_("drift", config.alarm_drift_score),
      alarm_shed_("shed_rate", config.alarm_shed_rate) {
  config_.validate();
}

void ServingMonitor::record(const Sample& sample) {
  HDC_CHECK(sample.predicted < config_.num_classes,
            "predicted class out of monitor range");
  ++samples_total_;
  if (!sample.correct) {
    ++errors_total_;
  }
  latency_.observe(sample.at, sample.latency);
  samples_.add(sample.at);
  if (!sample.correct) {
    errors_.add(sample.at);
  }
  if (sample.latency > config_.slo_latency) {
    slo_violations_.add(sample.at);
  }
  margin_.add(sample.at, sample.margin);
  ++class_counts_.at(sample.at)[sample.predicted];
  SlowestSlot& slow = slowest_.at(sample.at);
  if (sample.latency.to_seconds() > slow.latency_s) {
    slow.latency_s = sample.latency.to_seconds();
    slow.request_id = sample.request_id;
  }

  ewma_latency_.observe(sample.at, sample.latency.to_seconds());
  ewma_margin_.observe(sample.at, sample.margin);
  ewma_accuracy_.observe(sample.at, sample.correct ? 1.0 : 0.0);
  margin_reference_.observe(sample.at, sample.margin);

  evaluate_alarms(sample.at);
}

void ServingMonitor::record_attribution(SimDuration at,
                                        const RequestAttribution& attribution) {
  std::array<double, kNumStages>& slot = attribution_.at(at);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    slot[i] += attribution.stages[i].to_seconds();
  }
}

std::int64_t ServingMonitor::slowest_request_id(SimDuration now) {
  slowest_.advance_to(now);
  double worst = -1.0;
  std::int64_t id = -1;
  for (const SlowestSlot& slot : slowest_.slots()) {
    if (slot.latency_s > worst) {
      worst = slot.latency_s;
      id = slot.request_id;
    }
  }
  return id;
}

std::array<double, kNumStages> ServingMonitor::windowed_attribution_s(SimDuration now) {
  attribution_.advance_to(now);
  std::array<double, kNumStages> sums{};
  for (const auto& slot : attribution_.slots()) {
    for (std::size_t i = 0; i < kNumStages; ++i) {
      sums[i] += slot[i];
    }
  }
  return sums;
}

void ServingMonitor::record_transport(SimDuration at, std::uint64_t samples,
                                      std::uint64_t cpu_fallback_samples,
                                      std::uint64_t retries) {
  transport_samples_.add(at, samples);
  fallback_samples_.add(at, cpu_fallback_samples);
  retries_.add(at, retries);
  evaluate_alarms(at);
}

void ServingMonitor::record_admission(SimDuration at, std::uint64_t offered_samples,
                                      std::uint64_t shed_samples,
                                      std::uint64_t expired_samples,
                                      std::uint64_t degraded_samples) {
  offered_.add(at, offered_samples);
  shed_.add(at, shed_samples);
  expired_.add(at, expired_samples);
  degraded_.add(at, degraded_samples);
  shed_total_ += shed_samples;
  expired_total_ += expired_samples;
  degraded_total_ += degraded_samples;
  evaluate_alarms(at);
}

void ServingMonitor::set_quarantined(bool quarantined, SimDuration at) {
  gate_.set_quarantined(
      quarantined, at,
      [this](std::string_view name) { return find_alarm(name); },
      [this](const AlarmEvent& event) { push_event(event); });
}

void detail::log_quarantine_summary(std::uint64_t suppressed, std::uint64_t replayed,
                                    SimDuration at) {
  char message[160];
  std::snprintf(message, sizeof(message),
                "alarm=quarantine event=summary suppressed=%llu replayed=%llu t_s=%.9g",
                static_cast<unsigned long long>(suppressed),
                static_cast<unsigned long long>(replayed), at.to_seconds());
  HDC_LOG_WARN << message;
}

double ServingMonitor::windowed_accuracy(SimDuration now) {
  const std::uint64_t s = samples_.sum(now);
  if (s == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(errors_.sum(now)) / static_cast<double>(s);
}

double ServingMonitor::windowed_error_rate(SimDuration now) {
  const std::uint64_t s = samples_.sum(now);
  return s == 0 ? 0.0
               : static_cast<double>(errors_.sum(now)) / static_cast<double>(s);
}

double ServingMonitor::slo_violation_fraction(SimDuration now) {
  const std::uint64_t s = samples_.sum(now);
  return s == 0 ? 0.0
               : static_cast<double>(slo_violations_.sum(now)) / static_cast<double>(s);
}

double ServingMonitor::slo_burn_rate(SimDuration now) {
  return slo_violation_fraction(now) / config_.slo_error_budget;
}

double ServingMonitor::fallback_rate(SimDuration now) {
  const std::uint64_t s = transport_samples_.sum(now);
  return s == 0 ? 0.0
               : static_cast<double>(fallback_samples_.sum(now)) / static_cast<double>(s);
}

double ServingMonitor::shed_rate(SimDuration now) {
  const std::uint64_t offered = offered_.sum(now);
  return offered == 0
             ? 0.0
             : static_cast<double>(shed_.sum(now) + expired_.sum(now)) /
                   static_cast<double>(offered);
}

double ServingMonitor::degraded_fraction(SimDuration now) {
  const std::uint64_t served = transport_samples_.sum(now);
  return served == 0
             ? 0.0
             : static_cast<double>(degraded_.sum(now)) / static_cast<double>(served);
}

double ServingMonitor::drift_score() const {
  if (margin_reference_.empty() || ewma_margin_.empty()) {
    return 0.0;
  }
  const double reference = margin_reference_.value();
  if (reference <= 1e-12) {
    return 0.0;
  }
  const double collapse = (reference - ewma_margin_.value()) / reference;
  return std::clamp(collapse, 0.0, 1.0);
}

void ServingMonitor::evaluate_alarms(SimDuration now) {
  // Every edge produced at `now` carries the windowed slowest request id, so
  // alarm lines link straight to a retained exemplar chain.
  const std::int64_t exemplar = slowest_request_id(now);
  const auto tag = [&](std::optional<AlarmEvent> event) {
    if (event.has_value()) {
      event->exemplar_request_id = exemplar;
    }
    dispatch_event(std::move(event));
  };
  const std::uint64_t in_window = samples_.sum(now);
  if (in_window >= config_.min_samples) {
    tag(alarm_latency_.update(now, slo_burn_rate(now)));
    tag(alarm_error_.update(now, windowed_error_rate(now)));
    tag(alarm_drift_.update(now, drift_score()));
  }
  if (transport_samples_.sum(now) >= config_.min_samples) {
    tag(alarm_fallback_.update(now, fallback_rate(now)));
  }
  if (offered_.sum(now) >= config_.min_samples) {
    tag(alarm_shed_.update(now, shed_rate(now)));
  }
}

void ServingMonitor::dispatch_event(std::optional<AlarmEvent> event) {
  gate_.dispatch(std::move(event), [this](const AlarmEvent& e) { push_event(e); });
}

void ServingMonitor::push_event(const AlarmEvent& event) {
  events_.push_back(event);
  log_alarm_event(event);
}

void log_alarm_event(const AlarmEvent& event) {
  char message[192];
  std::snprintf(message, sizeof(message),
                "alarm=%s event=%s value=%.6g threshold=%.6g t_s=%.9g",
                event.alarm.c_str(), event.fired ? "fire" : "clear", event.value,
                event.threshold, event.at.to_seconds());
  std::string line = message;
  if (event.exemplar_request_id >= 0) {
    line += " exemplar=";
    line += std::to_string(event.exemplar_request_id);
  }
  if (!event.detail.empty()) {
    line += " detail=";
    line += event.detail;
  }
  HDC_LOG_WARN << line;
}

const ThresholdAlarm* ServingMonitor::find_alarm(std::string_view name) const {
  for (const ThresholdAlarm* alarm :
       {&alarm_latency_, &alarm_error_, &alarm_fallback_, &alarm_drift_, &alarm_shed_}) {
    if (alarm->name() == name) {
      return alarm;
    }
  }
  return nullptr;
}

bool ServingMonitor::alarm_firing(std::string_view name) const {
  const ThresholdAlarm* alarm = find_alarm(name);
  return alarm != nullptr && alarm->firing();
}

std::uint64_t ServingMonitor::alarm_fired_total(std::string_view name) const {
  const ThresholdAlarm* alarm = find_alarm(name);
  return alarm == nullptr ? 0 : alarm->fired_total();
}

MonitorSnapshot ServingMonitor::snapshot(SimDuration now) {
  MonitorSnapshot snap;
  snap.at = now;
  snap.samples_total = samples_total_;
  snap.errors_total = errors_total_;
  snap.lifetime_accuracy =
      samples_total_ == 0
          ? 0.0
          : 1.0 - static_cast<double>(errors_total_) / static_cast<double>(samples_total_);

  snap.window_span_s = config_.window.span.to_seconds();
  snap.window_samples = samples_.sum(now);
  const double effective_span =
      std::min(snap.window_span_s, std::max(now.to_seconds(), 1e-12));
  snap.throughput_sps = static_cast<double>(snap.window_samples) / effective_span;
  snap.latency_mean_s = latency_.mean(now).to_seconds();
  snap.latency_p50_s = latency_.quantile(now, 0.50).to_seconds();
  snap.latency_p95_s = latency_.quantile(now, 0.95).to_seconds();
  snap.latency_p99_s = latency_.quantile(now, 0.99).to_seconds();
  snap.windowed_accuracy = windowed_accuracy(now);
  snap.windowed_error_rate = windowed_error_rate(now);
  snap.margin_mean = margin_.mean(now);
  snap.fallback_rate = fallback_rate(now);
  const std::uint64_t transported = transport_samples_.sum(now);
  snap.retry_rate = transported == 0 ? 0.0
                                     : static_cast<double>(retries_.sum(now)) /
                                           static_cast<double>(transported);

  snap.ewma_latency_s = ewma_latency_.value();
  snap.ewma_margin = ewma_margin_.value();
  snap.ewma_accuracy = ewma_accuracy_.value();

  snap.slo_latency_s = config_.slo_latency.to_seconds();
  snap.slo_violation_fraction = slo_violation_fraction(now);
  snap.slo_error_budget = config_.slo_error_budget;
  snap.slo_burn_rate = slo_burn_rate(now);

  snap.drift_score = drift_score();
  snap.drift_margin_reference = margin_reference_.value();
  snap.drift_margin_current = ewma_margin_.value();

  snap.offered_samples = offered_.sum(now);
  snap.shed_rate = shed_rate(now);
  snap.degraded_fraction = degraded_fraction(now);
  snap.shed_total = shed_total_;
  snap.expired_total = expired_total_;
  snap.degraded_total = degraded_total_;
  snap.quarantined = gate_.quarantined();
  snap.suppressed_alarms_total = gate_.suppressed_total();

  const std::array<double, kNumStages> attribution = windowed_attribution_s(now);
  double attribution_total = 0.0;
  for (const double stage_s : attribution) {
    attribution_total += stage_s;
  }
  snap.attribution_total_s = attribution_total;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    snap.attribution_fractions[i] =
        attribution_total == 0.0 ? 0.0 : attribution[i] / attribution_total;
  }
  snap.exemplar_request_id = slowest_request_id(now);

  snap.class_counts.assign(config_.num_classes, 0);
  class_counts_.advance_to(now);
  for (const auto& slot : class_counts_.slots()) {
    for (std::size_t c = 0; c < slot.size(); ++c) {
      snap.class_counts[c] += slot[c];
    }
  }

  for (const ThresholdAlarm* alarm :
       {&alarm_latency_, &alarm_error_, &alarm_fallback_, &alarm_drift_, &alarm_shed_}) {
    snap.alarms.push_back(MonitorSnapshot::AlarmState{
        alarm->name(), alarm->firing(), alarm->fired_total(), alarm->last_value(),
        alarm->threshold()});
  }
  return snap;
}

// ------------------------------------- monitor checkpoint round-trip --------
//
// Every number below is written raw (doubles bit-exact through ByteWriter),
// so a restored monitor's subsequent windows, EWMAs, alarm edges and
// snapshots are byte-identical to a monitor that was never serialized.

namespace {

void write_duration(ByteWriter& w, SimDuration d) { w.write<double>(d.to_seconds()); }
SimDuration read_duration(ByteReader& r) {
  return SimDuration::seconds(r.read<double>());
}

void write_ewma(ByteWriter& w, const Ewma& ewma) {
  const Ewma::State state = ewma.state();
  w.write<double>(state.value);
  write_duration(w, state.last);
  w.write<std::uint8_t>(state.seeded ? 1 : 0);
}

void read_ewma(ByteReader& r, Ewma& ewma) {
  Ewma::State state;
  state.value = r.read<double>();
  state.last = read_duration(r);
  state.seeded = r.read<std::uint8_t>() != 0;
  ewma.set_state(state);
}

void write_alarm(ByteWriter& w, const ThresholdAlarm& alarm) {
  w.write<std::uint8_t>(alarm.firing() ? 1 : 0);
  w.write<double>(alarm.last_value());
  w.write<std::uint64_t>(alarm.fired_total());
}

void read_alarm(ByteReader& r, ThresholdAlarm& alarm) {
  const bool firing = r.read<std::uint8_t>() != 0;
  const double last_value = r.read<double>();
  const auto fired_total = r.read<std::uint64_t>();
  alarm.restore(firing, last_value, fired_total);
}

}  // namespace

void detail::write_alarm_event(ByteWriter& w, const AlarmEvent& event) {
  w.write_string(event.alarm);
  w.write<std::uint8_t>(event.fired ? 1 : 0);
  write_duration(w, event.at);
  w.write<double>(event.value);
  w.write<double>(event.threshold);
  w.write<std::int64_t>(event.exemplar_request_id);
  w.write_string(event.detail);
}

AlarmEvent detail::read_alarm_event(ByteReader& r) {
  AlarmEvent event;
  event.alarm = r.read_string();
  event.fired = r.read<std::uint8_t>() != 0;
  event.at = read_duration(r);
  event.value = r.read<double>();
  event.threshold = r.read<double>();
  event.exemplar_request_id = r.read<std::int64_t>();
  event.detail = r.read_string();
  return event;
}

void detail::write_alarm_events(ByteWriter& w, const std::vector<AlarmEvent>& events) {
  w.write<std::uint32_t>(static_cast<std::uint32_t>(events.size()));
  for (const AlarmEvent& event : events) {
    write_alarm_event(w, event);
  }
}

std::vector<AlarmEvent> detail::read_alarm_events(ByteReader& r) {
  const auto count = r.read<std::uint32_t>();
  std::vector<AlarmEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    events.push_back(read_alarm_event(r));
  }
  return events;
}

// ------------------------------------------------------- QuarantineGate ----

void QuarantineGate::serialize(ByteWriter& writer) const {
  writer.write<std::uint8_t>(quarantined_ ? 1 : 0);
  detail::write_alarm_events(writer, pending_fires_);
  writer.write<std::uint64_t>(suppressed_total_);
  writer.write<std::uint64_t>(suppressed_this_quarantine_);
}

void QuarantineGate::restore(ByteReader& reader) {
  quarantined_ = reader.read<std::uint8_t>() != 0;
  pending_fires_ = detail::read_alarm_events(reader);
  suppressed_total_ = reader.read<std::uint64_t>();
  suppressed_this_quarantine_ = reader.read<std::uint64_t>();
}

void SlidingCounter::serialize(ByteWriter& writer) const {
  writer.write<std::uint64_t>(ring_.cursor());
  writer.write_vector(ring_.slots());
}

void SlidingCounter::restore(ByteReader& reader) {
  ring_.set_cursor(reader.read<std::uint64_t>());
  std::vector<std::uint64_t> slots = reader.read_vector<std::uint64_t>();
  HDC_CHECK(slots.size() == ring_.slots().size(),
            "serialized sliding-counter window shape does not match the config");
  ring_.slots_mutable() = std::move(slots);
}

void SlidingMean::serialize(ByteWriter& writer) const {
  writer.write<std::uint64_t>(ring_.cursor());
  for (const Slot& slot : ring_.slots()) {
    writer.write<double>(slot.sum);
    writer.write<std::uint64_t>(slot.count);
  }
}

void SlidingMean::restore(ByteReader& reader) {
  ring_.set_cursor(reader.read<std::uint64_t>());
  for (Slot& slot : ring_.slots_mutable()) {
    slot.sum = reader.read<double>();
    slot.count = reader.read<std::uint64_t>();
  }
}

void SlidingHistogram::serialize(ByteWriter& writer) const {
  writer.write<std::uint64_t>(ring_.cursor());
  for (const Slot& slot : ring_.slots()) {
    for (const std::uint64_t bin : slot.bins) {
      writer.write<std::uint64_t>(bin);
    }
    writer.write<std::uint64_t>(slot.count);
    writer.write<double>(slot.sum_s);
    writer.write<double>(slot.min_s);
    writer.write<double>(slot.max_s);
  }
}

void SlidingHistogram::restore(ByteReader& reader) {
  ring_.set_cursor(reader.read<std::uint64_t>());
  for (Slot& slot : ring_.slots_mutable()) {
    for (std::uint64_t& bin : slot.bins) {
      bin = reader.read<std::uint64_t>();
    }
    slot.count = reader.read<std::uint64_t>();
    slot.sum_s = reader.read<double>();
    slot.min_s = reader.read<double>();
    slot.max_s = reader.read<double>();
  }
}

void ServingMonitor::serialize(ByteWriter& writer) const {
  // Resolved config first: deserialize reconstructs the monitor from it, so
  // auto-sized windows/SLOs round-trip without re-deriving them.
  writer.write<std::uint32_t>(config_.num_classes);
  write_duration(writer, config_.window.span);
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.window.buckets));
  writer.write<double>(config_.ewma_tau_short_s);
  writer.write<double>(config_.ewma_tau_long_s);
  write_duration(writer, config_.slo_latency);
  writer.write<double>(config_.slo_error_budget);
  writer.write<double>(config_.alarm_burn_rate);
  writer.write<double>(config_.alarm_error_rate);
  writer.write<double>(config_.alarm_fallback_rate);
  writer.write<double>(config_.alarm_drift_score);
  writer.write<double>(config_.alarm_shed_rate);
  writer.write<std::uint64_t>(config_.min_samples);

  latency_.serialize(writer);
  samples_.serialize(writer);
  errors_.serialize(writer);
  slo_violations_.serialize(writer);
  transport_samples_.serialize(writer);
  fallback_samples_.serialize(writer);
  retries_.serialize(writer);
  offered_.serialize(writer);
  shed_.serialize(writer);
  expired_.serialize(writer);
  degraded_.serialize(writer);
  margin_.serialize(writer);

  writer.write<std::uint64_t>(class_counts_.cursor());
  for (const std::vector<std::uint64_t>& slot : class_counts_.slots()) {
    writer.write_vector(slot);
  }
  writer.write<std::uint64_t>(slowest_.cursor());
  for (const SlowestSlot& slot : slowest_.slots()) {
    writer.write<double>(slot.latency_s);
    writer.write<std::int64_t>(slot.request_id);
  }
  writer.write<std::uint64_t>(attribution_.cursor());
  for (const auto& slot : attribution_.slots()) {
    for (const double stage_s : slot) {
      writer.write<double>(stage_s);
    }
  }

  write_ewma(writer, ewma_latency_);
  write_ewma(writer, ewma_margin_);
  write_ewma(writer, ewma_accuracy_);
  write_ewma(writer, margin_reference_);

  write_alarm(writer, alarm_latency_);
  write_alarm(writer, alarm_error_);
  write_alarm(writer, alarm_fallback_);
  write_alarm(writer, alarm_drift_);
  write_alarm(writer, alarm_shed_);
  detail::write_alarm_events(writer, events_);

  gate_.serialize(writer);

  writer.write<std::uint64_t>(samples_total_);
  writer.write<std::uint64_t>(errors_total_);
  writer.write<std::uint64_t>(shed_total_);
  writer.write<std::uint64_t>(expired_total_);
  writer.write<std::uint64_t>(degraded_total_);
}

ServingMonitor ServingMonitor::deserialize(ByteReader& reader) {
  MonitorConfig config;
  config.num_classes = reader.read<std::uint32_t>();
  config.window.span = read_duration(reader);
  config.window.buckets = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.ewma_tau_short_s = reader.read<double>();
  config.ewma_tau_long_s = reader.read<double>();
  config.slo_latency = read_duration(reader);
  config.slo_error_budget = reader.read<double>();
  config.alarm_burn_rate = reader.read<double>();
  config.alarm_error_rate = reader.read<double>();
  config.alarm_fallback_rate = reader.read<double>();
  config.alarm_drift_score = reader.read<double>();
  config.alarm_shed_rate = reader.read<double>();
  config.min_samples = reader.read<std::uint64_t>();

  ServingMonitor monitor(config);
  monitor.latency_.restore(reader);
  monitor.samples_.restore(reader);
  monitor.errors_.restore(reader);
  monitor.slo_violations_.restore(reader);
  monitor.transport_samples_.restore(reader);
  monitor.fallback_samples_.restore(reader);
  monitor.retries_.restore(reader);
  monitor.offered_.restore(reader);
  monitor.shed_.restore(reader);
  monitor.expired_.restore(reader);
  monitor.degraded_.restore(reader);
  monitor.margin_.restore(reader);

  monitor.class_counts_.set_cursor(reader.read<std::uint64_t>());
  for (std::vector<std::uint64_t>& slot : monitor.class_counts_.slots_mutable()) {
    std::vector<std::uint64_t> counts = reader.read_vector<std::uint64_t>();
    HDC_CHECK(counts.size() == slot.size(),
              "serialized class-count window does not match num_classes");
    slot = std::move(counts);
  }
  monitor.slowest_.set_cursor(reader.read<std::uint64_t>());
  for (SlowestSlot& slot : monitor.slowest_.slots_mutable()) {
    slot.latency_s = reader.read<double>();
    slot.request_id = reader.read<std::int64_t>();
  }
  monitor.attribution_.set_cursor(reader.read<std::uint64_t>());
  for (auto& slot : monitor.attribution_.slots_mutable()) {
    for (double& stage_s : slot) {
      stage_s = reader.read<double>();
    }
  }

  read_ewma(reader, monitor.ewma_latency_);
  read_ewma(reader, monitor.ewma_margin_);
  read_ewma(reader, monitor.ewma_accuracy_);
  read_ewma(reader, monitor.margin_reference_);

  read_alarm(reader, monitor.alarm_latency_);
  read_alarm(reader, monitor.alarm_error_);
  read_alarm(reader, monitor.alarm_fallback_);
  read_alarm(reader, monitor.alarm_drift_);
  read_alarm(reader, monitor.alarm_shed_);
  monitor.events_ = detail::read_alarm_events(reader);

  monitor.gate_.restore(reader);

  monitor.samples_total_ = reader.read<std::uint64_t>();
  monitor.errors_total_ = reader.read<std::uint64_t>();
  monitor.shed_total_ = reader.read<std::uint64_t>();
  monitor.expired_total_ = reader.read<std::uint64_t>();
  monitor.degraded_total_ = reader.read<std::uint64_t>();
  return monitor;
}

// ------------------------------------------------------ MonitorSnapshot ----

namespace {

void append_field(std::string& out, const char* key, double value, bool leading_comma) {
  if (leading_comma) {
    out.push_back(',');
  }
  detail::append_json_string(out, key);
  out.push_back(':');
  detail::append_json_number(out, value);
}

void append_gate_metric(std::string& out, const char* name, double value,
                        const char* unit, const char* kind, const char* better,
                        bool leading_comma) {
  if (leading_comma) {
    out.push_back(',');
  }
  detail::append_json_string(out, name);
  out += ":{\"value\":";
  detail::append_json_number(out, value);
  out += ",\"unit\":";
  detail::append_json_string(out, unit);
  out += ",\"kind\":";
  detail::append_json_string(out, kind);
  out += ",\"better\":";
  detail::append_json_string(out, better);
  out.push_back('}');
}

}  // namespace

std::string MonitorSnapshot::to_json() const {
  std::string out;
  out += "{\"schema\":\"hdc-monitor-v1\",\"t_s\":";
  detail::append_json_number(out, at.to_seconds());

  out += ",\"lifetime\":{\"samples\":" + std::to_string(samples_total) +
         ",\"errors\":" + std::to_string(errors_total);
  append_field(out, "accuracy", lifetime_accuracy, /*leading_comma=*/true);
  out += "}";

  out += ",\"window\":{\"span_s\":";
  detail::append_json_number(out, window_span_s);
  out += ",\"samples\":" + std::to_string(window_samples);
  append_field(out, "throughput_sps", throughput_sps, true);
  out += ",\"latency\":{";
  append_field(out, "mean_s", latency_mean_s, false);
  append_field(out, "p50_s", latency_p50_s, true);
  append_field(out, "p95_s", latency_p95_s, true);
  append_field(out, "p99_s", latency_p99_s, true);
  out += "}";
  append_field(out, "accuracy", windowed_accuracy, true);
  append_field(out, "error_rate", windowed_error_rate, true);
  append_field(out, "margin", margin_mean, true);
  append_field(out, "fallback_rate", fallback_rate, true);
  append_field(out, "retry_rate", retry_rate, true);
  out += ",\"exemplar_request_id\":" + std::to_string(exemplar_request_id);
  out += "}";

  out += ",\"ewma\":{";
  append_field(out, "latency_s", ewma_latency_s, false);
  append_field(out, "margin", ewma_margin, true);
  append_field(out, "accuracy", ewma_accuracy, true);
  out += "}";

  out += ",\"slo\":{";
  append_field(out, "latency_target_s", slo_latency_s, false);
  append_field(out, "violation_fraction", slo_violation_fraction, true);
  append_field(out, "error_budget", slo_error_budget, true);
  append_field(out, "burn_rate", slo_burn_rate, true);
  out += "}";

  out += ",\"drift\":{";
  append_field(out, "score", drift_score, false);
  append_field(out, "margin_reference", drift_margin_reference, true);
  append_field(out, "margin_current", drift_margin_current, true);
  out += "}";

  out += ",\"attribution\":{";
  append_field(out, "total_s", attribution_total_s, false);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const std::string key =
        std::string(stage_name(static_cast<Stage>(i))) + "_fraction";
    append_field(out, key.c_str(), attribution_fractions[i], true);
  }
  out += "}";

  out += ",\"admission\":{\"offered\":" + std::to_string(offered_samples);
  append_field(out, "shed_rate", shed_rate, true);
  append_field(out, "degraded_fraction", degraded_fraction, true);
  out += ",\"shed_total\":" + std::to_string(shed_total) +
         ",\"expired_total\":" + std::to_string(expired_total) +
         ",\"degraded_total\":" + std::to_string(degraded_total) +
         ",\"quarantined\":";
  out += quarantined ? "true" : "false";
  out += ",\"suppressed_alarms_total\":" + std::to_string(suppressed_alarms_total);
  out += "}";

  out += ",\"classes\":[";
  for (std::size_t c = 0; c < class_counts.size(); ++c) {
    if (c > 0) {
      out.push_back(',');
    }
    out += std::to_string(class_counts[c]);
  }
  out += "]";

  out += ",\"alarms\":{";
  for (std::size_t i = 0; i < alarms.size(); ++i) {
    const AlarmState& alarm = alarms[i];
    if (i > 0) {
      out.push_back(',');
    }
    detail::append_json_string(out, alarm.name);
    out += ":{\"firing\":";
    out += alarm.firing ? "true" : "false";
    out += ",\"fired_total\":" + std::to_string(alarm.fired_total);
    append_field(out, "value", alarm.value, true);
    append_field(out, "threshold", alarm.threshold, true);
    out.push_back('}');
  }
  out += "}";

  // Model-quality section (obs/model_stats.hpp), pre-rendered by the owner.
  if (!model_json.empty()) {
    out += ",\"model\":";
    out += model_json;
  }

  // Energy section (obs/energy.hpp), pre-rendered by the owner.
  if (!energy_json.empty()) {
    out += ",\"energy\":";
    out += energy_json;
  }

  // Flat gate map in the hdc-bench-v1 entry shape: `hdc_perfdiff` diffs a
  // snapshot against a committed baseline exactly like a bench JSON.
  out += ",\"metrics\":{";
  append_gate_metric(out, "lifetime.accuracy", lifetime_accuracy, "fraction", "sim",
                     "higher", false);
  append_gate_metric(out, "window.accuracy", windowed_accuracy, "fraction", "sim",
                     "higher", true);
  append_gate_metric(out, "window.error_rate", windowed_error_rate, "fraction", "sim",
                     "lower", true);
  append_gate_metric(out, "window.latency_p95_s", latency_p95_s, "s", "sim", "lower",
                     true);
  append_gate_metric(out, "window.latency_p99_s", latency_p99_s, "s", "sim", "lower",
                     true);
  append_gate_metric(out, "window.fallback_rate", fallback_rate, "fraction", "sim",
                     "lower", true);
  append_gate_metric(out, "slo.burn_rate", slo_burn_rate, "x", "sim", "lower", true);
  append_gate_metric(out, "window.shed_rate", shed_rate, "fraction", "sim", "lower",
                     true);
  append_gate_metric(out, "window.degraded_fraction", degraded_fraction, "fraction",
                     "sim", "lower", true);
  append_gate_metric(out, "window.samples", static_cast<double>(window_samples), "",
                     "info", "higher", true);
  append_gate_metric(out, "drift.score", drift_score, "fraction", "info", "lower", true);
  // Attribution fractions: waste stages (queue wait, backoff, host fallback)
  // gate as simulated-time regressions; the useful-work split is report-only.
  append_gate_metric(out, "attribution.queue_wait_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kQueueWait)],
                     "fraction", "sim", "lower", true);
  append_gate_metric(out, "attribution.batch_wait_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kBatchWait)],
                     "fraction", "sim", "lower", true);
  append_gate_metric(out, "attribution.backoff_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kBackoff)],
                     "fraction", "sim", "lower", true);
  append_gate_metric(out, "attribution.swap_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kSwap)],
                     "fraction", "info", "lower", true);
  append_gate_metric(out, "attribution.host_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kHost)],
                     "fraction", "sim", "lower", true);
  append_gate_metric(out, "attribution.transfer_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kTransfer)],
                     "fraction", "info", "lower", true);
  append_gate_metric(out, "attribution.device_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kDevice)],
                     "fraction", "info", "higher", true);
  append_gate_metric(out, "attribution.update_fraction",
                     attribution_fractions[static_cast<std::size_t>(Stage::kUpdate)],
                     "fraction", "info", "lower", true);
  double drift_fired = 0.0;
  for (const AlarmState& alarm : alarms) {
    if (alarm.name == "drift") {
      drift_fired = static_cast<double>(alarm.fired_total);
    }
  }
  append_gate_metric(out, "alarms.drift.fired_total", drift_fired, "", "info", "lower",
                     true);
  out += model_metrics_json;   // ",\"model.x\":{...}" entries (possibly empty)
  out += energy_metrics_json;  // ",\"energy.x\":{...}" entries (possibly empty)
  out += "}}";
  return out;
}

namespace {

void prom_line(std::string& out, const char* family, const char* labels, double value) {
  char buf[192];
  if (labels == nullptr || labels[0] == '\0') {
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", family, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s{%s} %.9g\n", family, labels, value);
  }
  out += buf;
}

void prom_header(std::string& out, const char* family, const char* type,
                 const char* help) {
  out += "# HELP ";
  out += family;
  out.push_back(' ');
  out += help;
  out += "\n# TYPE ";
  out += family;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string MonitorSnapshot::to_prometheus() const {
  std::string out;
  prom_header(out, "hdc_serve_samples_total", "counter", "Samples served (lifetime)");
  prom_line(out, "hdc_serve_samples_total", "", static_cast<double>(samples_total));
  prom_header(out, "hdc_serve_errors_total", "counter",
              "Prequential misclassifications (lifetime)");
  prom_line(out, "hdc_serve_errors_total", "", static_cast<double>(errors_total));
  prom_header(out, "hdc_serve_lifetime_accuracy", "gauge", "Lifetime accuracy");
  prom_line(out, "hdc_serve_lifetime_accuracy", "", lifetime_accuracy);

  prom_header(out, "hdc_serve_window_samples", "gauge", "Samples in the sliding window");
  prom_line(out, "hdc_serve_window_samples", "", static_cast<double>(window_samples));
  prom_header(out, "hdc_serve_window_accuracy", "gauge", "Windowed prequential accuracy");
  prom_line(out, "hdc_serve_window_accuracy", "", windowed_accuracy);
  prom_header(out, "hdc_serve_window_error_rate", "gauge", "Windowed error rate");
  prom_line(out, "hdc_serve_window_error_rate", "", windowed_error_rate);
  prom_header(out, "hdc_serve_throughput_sps", "gauge",
              "Windowed throughput (samples per simulated second)");
  prom_line(out, "hdc_serve_throughput_sps", "", throughput_sps);

  prom_header(out, "hdc_serve_latency_seconds", "gauge",
              "Windowed latency quantiles (simulated seconds)");
  prom_line(out, "hdc_serve_latency_seconds", "quantile=\"0.5\"", latency_p50_s);
  prom_line(out, "hdc_serve_latency_seconds", "quantile=\"0.95\"", latency_p95_s);
  prom_line(out, "hdc_serve_latency_seconds", "quantile=\"0.99\"", latency_p99_s);
  prom_header(out, "hdc_serve_latency_mean_seconds", "gauge",
              "Windowed mean latency (simulated seconds)");
  prom_line(out, "hdc_serve_latency_mean_seconds", "", latency_mean_s);

  prom_header(out, "hdc_serve_margin", "gauge", "Windowed mean prediction margin");
  prom_line(out, "hdc_serve_margin", "", margin_mean);
  prom_header(out, "hdc_serve_slo_burn_rate", "gauge", "Latency SLO burn rate");
  prom_line(out, "hdc_serve_slo_burn_rate", "", slo_burn_rate);
  prom_header(out, "hdc_serve_drift_score", "gauge", "Margin-collapse drift score");
  prom_line(out, "hdc_serve_drift_score", "", drift_score);
  prom_header(out, "hdc_serve_fallback_rate", "gauge",
              "Windowed CPU-fallback sample fraction");
  prom_line(out, "hdc_serve_fallback_rate", "", fallback_rate);
  prom_header(out, "hdc_serve_retry_rate", "gauge",
              "Windowed device retries per transported sample");
  prom_line(out, "hdc_serve_retry_rate", "", retry_rate);
  prom_header(out, "hdc_serve_shed_rate", "gauge",
              "Windowed fraction of offered samples shed or expired");
  prom_line(out, "hdc_serve_shed_rate", "", shed_rate);
  prom_header(out, "hdc_serve_degraded_fraction", "gauge",
              "Windowed fraction of served samples on a degraded ladder tier");
  prom_line(out, "hdc_serve_degraded_fraction", "", degraded_fraction);
  prom_header(out, "hdc_serve_shed_samples_total", "counter",
              "Samples shed by admission control (lifetime)");
  prom_line(out, "hdc_serve_shed_samples_total", "", static_cast<double>(shed_total));
  prom_header(out, "hdc_serve_expired_samples_total", "counter",
              "Samples expired on their deadline (lifetime)");
  prom_line(out, "hdc_serve_expired_samples_total", "",
            static_cast<double>(expired_total));
  prom_header(out, "hdc_serve_degraded_samples_total", "counter",
              "Samples served on a degraded ladder tier (lifetime)");
  prom_line(out, "hdc_serve_degraded_samples_total", "",
            static_cast<double>(degraded_total));
  prom_header(out, "hdc_serve_quarantined", "gauge",
              "1 while the device is quarantined");
  prom_line(out, "hdc_serve_quarantined", "", quarantined ? 1.0 : 0.0);
  prom_header(out, "hdc_serve_suppressed_alarms_total", "counter",
              "Alarm fire edges suppressed during quarantine (lifetime)");
  prom_line(out, "hdc_serve_suppressed_alarms_total", "",
            static_cast<double>(suppressed_alarms_total));

  prom_header(out, "hdc_serve_attribution_fraction", "gauge",
              "Windowed latency attribution fraction per stage");
  for (std::size_t i = 0; i < kNumStages; ++i) {
    char labels[64];
    std::snprintf(labels, sizeof(labels), "stage=\"%s\"",
                  stage_name(static_cast<Stage>(i)));
    prom_line(out, "hdc_serve_attribution_fraction", labels, attribution_fractions[i]);
  }
  prom_header(out, "hdc_serve_exemplar_request_id", "gauge",
              "Request id of the slowest sample in the window (-1 = empty)");
  prom_line(out, "hdc_serve_exemplar_request_id", "",
            static_cast<double>(exemplar_request_id));

  prom_header(out, "hdc_serve_class_predictions", "gauge",
              "Windowed predictions per class");
  for (std::size_t c = 0; c < class_counts.size(); ++c) {
    char labels[48];
    std::snprintf(labels, sizeof(labels), "class=\"%zu\"", c);
    prom_line(out, "hdc_serve_class_predictions", labels,
              static_cast<double>(class_counts[c]));
  }

  prom_header(out, "hdc_serve_alarm_firing", "gauge", "1 while the alarm condition holds");
  for (const AlarmState& alarm : alarms) {
    char labels[64];
    std::snprintf(labels, sizeof(labels), "alarm=\"%s\"", alarm.name.c_str());
    prom_line(out, "hdc_serve_alarm_firing", labels, alarm.firing ? 1.0 : 0.0);
  }
  prom_header(out, "hdc_serve_alarm_fired_total", "counter",
              "Edge-triggered alarm fire count");
  for (const AlarmState& alarm : alarms) {
    char labels[64];
    std::snprintf(labels, sizeof(labels), "alarm=\"%s\"", alarm.name.c_str());
    prom_line(out, "hdc_serve_alarm_fired_total", labels,
              static_cast<double>(alarm.fired_total));
  }
  out += model_prometheus;   // hdc_model_* families (possibly empty)
  out += energy_prometheus;  // hdc_energy_* families (possibly empty)
  return out;
}

}  // namespace hdc::obs
