#include "obs/model_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace hdc::obs {

namespace {

constexpr const char* kClassErrorAlarm = "class_error";
constexpr const char* kConfusionPairAlarm = "confusion_pair";

/// Denominator floor for the variance ratio (the scores are eta-squared
/// style fractions in [0, 1], so the floor only matters for empty windows).
constexpr double kVarianceEpsilon = 1e-12;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

void ModelStatsConfig::validate() const {
  HDC_CHECK(num_classes > 0, "model stats need the class count");
  window.validate();
  HDC_CHECK(dim_buckets > 0, "model stats need at least one dimension bucket");
  HDC_CHECK(calibration_bins > 0, "model stats need at least one calibration bin");
  HDC_CHECK(alarm_class_error_rate >= 0.0 && alarm_confusion_pair >= 0.0,
            "model alarm thresholds must be non-negative");
  HDC_CHECK(saturation_band > 0.0 && saturation_band <= 1.0,
            "saturation band must be in (0, 1]");
}

ModelQualityStats::ModelQualityStats(ModelStatsConfig config)
    : config_(config),
      window_confusion_(config.window,
                        std::vector<std::uint64_t>(
                            static_cast<std::size_t>(config.num_classes) *
                                config.num_classes,
                            0)),
      confusion_(static_cast<std::size_t>(config.num_classes) * config.num_classes, 0),
      class_served_(config.num_classes, 0),
      calibration_(config.calibration_bins),
      alarm_class_error_(kClassErrorAlarm, config.alarm_class_error_rate),
      alarm_pair_(kConfusionPairAlarm, config.alarm_confusion_pair) {
  config_.validate();
  if (config_.dim > 0) {
    DimSlot zero;
    zero.class_sums.assign(
        static_cast<std::size_t>(config_.num_classes) * config_.dim, 0.0);
    zero.sums.assign(config_.dim, 0.0);
    zero.sumsq.assign(config_.dim, 0.0);
    zero.counts.assign(config_.num_classes, 0);
    dims_.emplace(WindowConfig{config_.window.span, config_.dim_buckets},
                  std::move(zero));
  }
}

void ModelQualityStats::record(const Sample& sample) {
  HDC_CHECK(sample.predicted < config_.num_classes,
            "predicted class out of model-stats range");
  HDC_CHECK(sample.label < config_.num_classes,
            "true label out of model-stats range");
  const std::size_t cell =
      static_cast<std::size_t>(sample.label) * config_.num_classes + sample.predicted;

  ++samples_total_;
  ++confusion_[cell];
  ++class_served_[sample.label];
  ++window_confusion_.at(sample.at)[cell];

  const double confidence = clamp01(0.5 * (sample.top1 + 1.0));
  std::size_t bin = static_cast<std::size_t>(
      confidence * static_cast<double>(config_.calibration_bins));
  bin = std::min(bin, config_.calibration_bins - 1);
  ModelStatsSnapshot::CalibrationBin& slot = calibration_[bin];
  ++slot.count;
  if (sample.predicted == sample.label) {
    ++slot.correct;
  }
  slot.confidence_sum += confidence;

  evaluate_alarms(sample.at, sample.request_id);
}

void ModelQualityStats::record_dimensions(SimDuration at, std::uint32_t label,
                                          std::span<const float> encoded) {
  if (!dims_.has_value()) {
    return;
  }
  HDC_CHECK(label < config_.num_classes, "true label out of model-stats range");
  HDC_CHECK(encoded.size() == config_.dim,
            "encoded width does not match model-stats dim");
  DimSlot& slot = dims_->at(at);
  double* class_row = slot.class_sums.data() +
                      static_cast<std::size_t>(label) * config_.dim;
  for (std::size_t d = 0; d < config_.dim; ++d) {
    const double v = static_cast<double>(encoded[d]);
    class_row[d] += v;
    slot.sums[d] += v;
    slot.sumsq[d] += v * v;
  }
  ++slot.counts[label];
}

void ModelQualityStats::observe_model(const tensor::MatrixF& class_hypervectors) {
  HDC_CHECK(class_hypervectors.rows() == config_.num_classes,
            "deployed model class count does not match model-stats config");
  if (config_.dim > 0) {
    HDC_CHECK(class_hypervectors.cols() == config_.dim,
              "deployed model width does not match model-stats dim");
  }
  const std::size_t rows = class_hypervectors.rows();
  const std::size_t cols = class_hypervectors.cols();

  double norm_min = 0.0;
  double norm_sum = 0.0;
  std::uint64_t saturated = 0;
  std::vector<double> norms(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const float> row = class_hypervectors.row(r);
    double sumsq = 0.0;
    double absmax = 0.0;
    for (const float v : row) {
      sumsq += static_cast<double>(v) * static_cast<double>(v);
      absmax = std::max(absmax, std::abs(static_cast<double>(v)));
    }
    norms[r] = std::sqrt(sumsq);
    norm_sum += norms[r];
    if (r == 0 || norms[r] < norm_min) {
      norm_min = norms[r];
    }
    if (absmax > 0.0) {
      const double band = config_.saturation_band * absmax;
      for (const float v : row) {
        if (std::abs(static_cast<double>(v)) >= band) {
          ++saturated;
        }
      }
    }
  }
  norm_min_ = norm_min;
  norm_mean_ = rows == 0 ? 0.0 : norm_sum / static_cast<double>(rows);
  saturation_ = rows == 0 || cols == 0
                    ? 0.0
                    : static_cast<double>(saturated) /
                          static_cast<double>(rows * cols);

  // Pairwise cosine separation 1 - cos(a, b); zero-norm rows contribute a
  // separation of 1 (a cold class vector is trivially "far" from everything,
  // and its norm already flags it above).
  double sep_min = 0.0;
  double sep_sum = 0.0;
  std::uint64_t pairs = 0;
  for (std::size_t a = 0; a + 1 < rows; ++a) {
    const std::span<const float> row_a = class_hypervectors.row(a);
    for (std::size_t b = a + 1; b < rows; ++b) {
      const std::span<const float> row_b = class_hypervectors.row(b);
      double dot = 0.0;
      for (std::size_t d = 0; d < cols; ++d) {
        dot += static_cast<double>(row_a[d]) * static_cast<double>(row_b[d]);
      }
      const double denom = norms[a] * norms[b];
      const double cosine = denom > 0.0 ? dot / denom : 0.0;
      const double separation = 1.0 - cosine;
      if (pairs == 0 || separation < sep_min) {
        sep_min = separation;
      }
      sep_sum += separation;
      ++pairs;
    }
  }
  separation_min_ = sep_min;
  separation_mean_ = pairs == 0 ? 0.0 : sep_sum / static_cast<double>(pairs);
  ++model_refreshes_;
}

std::vector<std::uint64_t> ModelQualityStats::merged_window_confusion(
    SimDuration now) {
  window_confusion_.advance_to(now);
  std::vector<std::uint64_t> merged(
      static_cast<std::size_t>(config_.num_classes) * config_.num_classes, 0);
  for (const std::vector<std::uint64_t>& slot : window_confusion_.slots()) {
    for (std::size_t i = 0; i < merged.size(); ++i) {
      merged[i] += slot[i];
    }
  }
  return merged;
}

void ModelQualityStats::evaluate_alarms(SimDuration now, std::int64_t request_id) {
  const std::vector<std::uint64_t> window = merged_window_confusion(now);
  const std::size_t classes = config_.num_classes;

  double worst_error = 0.0;
  std::string worst_error_detail;
  double worst_pair = 0.0;
  std::string worst_pair_detail;
  for (std::size_t a = 0; a < classes; ++a) {
    std::uint64_t row = 0;
    for (std::size_t b = 0; b < classes; ++b) {
      row += window[a * classes + b];
    }
    if (row < config_.min_class_samples) {
      continue;
    }
    const double row_d = static_cast<double>(row);
    const double error =
        1.0 - static_cast<double>(window[a * classes + a]) / row_d;
    if (worst_error_detail.empty() || error > worst_error) {
      worst_error = error;
      worst_error_detail = "class=" + std::to_string(a);
    }
    for (std::size_t b = 0; b < classes; ++b) {
      if (b == a || window[a * classes + b] == 0) {
        continue;
      }
      const double fraction = static_cast<double>(window[a * classes + b]) / row_d;
      if (worst_pair_detail.empty() || fraction > worst_pair) {
        worst_pair = fraction;
        worst_pair_detail =
            "pair=" + std::to_string(a) + "->" + std::to_string(b);
      }
    }
  }
  class_error_detail_ = worst_error_detail;
  pair_detail_ = worst_pair_detail;

  const auto tag = [&](std::optional<AlarmEvent> event, const std::string& detail) {
    if (event.has_value()) {
      event->exemplar_request_id = request_id;
      event->detail = detail;
    }
    gate_.dispatch(std::move(event), [this](const AlarmEvent& e) { push_event(e); });
  };
  tag(alarm_class_error_.update(now, worst_error), class_error_detail_);
  tag(alarm_pair_.update(now, worst_pair), pair_detail_);
}

void ModelQualityStats::set_quarantined(bool quarantined, SimDuration at) {
  gate_.set_quarantined(
      quarantined, at,
      [this](std::string_view name) { return find_alarm(name); },
      [this](const AlarmEvent& event) { push_event(event); });
}

void ModelQualityStats::push_event(const AlarmEvent& event) {
  events_.push_back(event);
  log_alarm_event(event);
}

const ThresholdAlarm* ModelQualityStats::find_alarm(std::string_view name) const {
  for (const ThresholdAlarm* alarm : {&alarm_class_error_, &alarm_pair_}) {
    if (alarm->name() == name) {
      return alarm;
    }
  }
  return nullptr;
}

bool ModelQualityStats::alarm_firing(std::string_view name) const {
  const ThresholdAlarm* alarm = find_alarm(name);
  return alarm != nullptr && alarm->firing();
}

std::uint64_t ModelQualityStats::alarm_fired_total(std::string_view name) const {
  const ThresholdAlarm* alarm = find_alarm(name);
  return alarm == nullptr ? 0 : alarm->fired_total();
}

ModelStatsSnapshot ModelQualityStats::snapshot(SimDuration now) {
  ModelStatsSnapshot snap;
  snap.at = now;
  snap.num_classes = config_.num_classes;
  snap.dim = config_.dim;
  snap.samples_total = samples_total_;
  snap.confusion = confusion_;
  snap.class_served = class_served_;

  const std::size_t classes = config_.num_classes;
  snap.window_confusion = merged_window_confusion(now);
  snap.window_recall.assign(classes, 0.0);
  snap.window_precision.assign(classes, 0.0);
  std::uint64_t window_total = 0;
  std::uint64_t window_diag = 0;
  std::vector<std::uint64_t> row_sums(classes, 0);
  std::vector<std::uint64_t> col_sums(classes, 0);
  for (std::size_t a = 0; a < classes; ++a) {
    for (std::size_t b = 0; b < classes; ++b) {
      const std::uint64_t n = snap.window_confusion[a * classes + b];
      row_sums[a] += n;
      col_sums[b] += n;
      window_total += n;
      if (a == b) {
        window_diag += n;
      }
    }
  }
  for (std::size_t c = 0; c < classes; ++c) {
    const std::uint64_t diag = snap.window_confusion[c * classes + c];
    snap.window_recall[c] =
        row_sums[c] == 0 ? 0.0
                         : static_cast<double>(diag) / static_cast<double>(row_sums[c]);
    snap.window_precision[c] =
        col_sums[c] == 0 ? 0.0
                         : static_cast<double>(diag) / static_cast<double>(col_sums[c]);
  }
  snap.window_samples = window_total;
  snap.window_accuracy =
      window_total == 0
          ? 0.0
          : static_cast<double>(window_diag) / static_cast<double>(window_total);

  // Top-K confusable pairs: off-diagonal cells by count descending, ties to
  // the lowest (actual, predicted) — a total order, so snapshots are
  // deterministic.
  std::vector<ModelStatsSnapshot::ConfusionPair> pairs;
  for (std::size_t a = 0; a < classes; ++a) {
    for (std::size_t b = 0; b < classes; ++b) {
      if (a == b || snap.window_confusion[a * classes + b] == 0) {
        continue;
      }
      ModelStatsSnapshot::ConfusionPair pair;
      pair.actual = static_cast<std::uint32_t>(a);
      pair.predicted = static_cast<std::uint32_t>(b);
      pair.count = snap.window_confusion[a * classes + b];
      pair.fraction = static_cast<double>(pair.count) /
                      static_cast<double>(row_sums[a]);
      pairs.push_back(pair);
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const ModelStatsSnapshot::ConfusionPair& x,
               const ModelStatsSnapshot::ConfusionPair& y) {
              if (x.count != y.count) {
                return x.count > y.count;
              }
              if (x.actual != y.actual) {
                return x.actual < y.actual;
              }
              return x.predicted < y.predicted;
            });
  if (pairs.size() > config_.top_pairs) {
    pairs.resize(config_.top_pairs);
  }
  snap.top_pairs = std::move(pairs);

  snap.calibration = calibration_;
  double ece = 0.0;
  if (samples_total_ > 0) {
    for (const ModelStatsSnapshot::CalibrationBin& bin : calibration_) {
      if (bin.count == 0) {
        continue;
      }
      const double n = static_cast<double>(bin.count);
      const double accuracy = static_cast<double>(bin.correct) / n;
      const double confidence = bin.confidence_sum / n;
      ece += std::abs(accuracy - confidence) * n /
             static_cast<double>(samples_total_);
    }
  }
  snap.ece = ece;

  snap.norm_min = norm_min_;
  snap.norm_mean = norm_mean_;
  snap.saturation_fraction = saturation_;
  snap.separation_min = separation_min_;
  snap.separation_mean = separation_mean_;
  snap.model_refreshes = model_refreshes_;

  // Per-dimension discriminability: eta-squared style between-class variance
  // fraction per dim over the merged dim window, in [0, 1]. The bottom of
  // the ascending ranking (ties to the lowest dim index) is what a
  // DistHD-style regeneration pass would retire first.
  if (dims_.has_value()) {
    dims_->advance_to(now);
    const std::size_t dim = config_.dim;
    std::vector<double> class_sums(static_cast<std::size_t>(classes) * dim, 0.0);
    std::vector<double> sums(dim, 0.0);
    std::vector<double> sumsq(dim, 0.0);
    std::vector<std::uint64_t> counts(classes, 0);
    for (const DimSlot& slot : dims_->slots()) {
      for (std::size_t i = 0; i < class_sums.size(); ++i) {
        class_sums[i] += slot.class_sums[i];
      }
      for (std::size_t d = 0; d < dim; ++d) {
        sums[d] += slot.sums[d];
        sumsq[d] += slot.sumsq[d];
      }
      for (std::size_t c = 0; c < classes; ++c) {
        counts[c] += slot.counts[c];
      }
    }
    std::uint64_t total = 0;
    for (const std::uint64_t n : counts) {
      total += n;
    }
    snap.dim_window_samples = total;
    if (total >= 2) {
      std::vector<ModelStatsSnapshot::DimScore> scores(dim);
      const double n_total = static_cast<double>(total);
      double score_sum = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double mean = sums[d] / n_total;
        const double total_var = std::max(0.0, sumsq[d] / n_total - mean * mean);
        double between = 0.0;
        for (std::size_t c = 0; c < classes; ++c) {
          if (counts[c] == 0) {
            continue;
          }
          const double n_c = static_cast<double>(counts[c]);
          const double class_mean = class_sums[c * dim + d] / n_c;
          const double delta = class_mean - mean;
          between += (n_c / n_total) * delta * delta;
        }
        scores[d].dim = static_cast<std::uint32_t>(d);
        scores[d].score = clamp01(between / (total_var + kVarianceEpsilon));
        score_sum += scores[d].score;
      }
      snap.dim_score_mean = score_sum / static_cast<double>(dim);
      std::sort(scores.begin(), scores.end(),
                [](const ModelStatsSnapshot::DimScore& x,
                   const ModelStatsSnapshot::DimScore& y) {
                  if (x.score != y.score) {
                    return x.score < y.score;
                  }
                  return x.dim < y.dim;
                });
      if (scores.size() > config_.bottom_dims) {
        scores.resize(config_.bottom_dims);
      }
      snap.bottom_dims = std::move(scores);
    }
  }

  for (const ThresholdAlarm* alarm : {&alarm_class_error_, &alarm_pair_}) {
    ModelStatsSnapshot::AlarmState state;
    state.name = alarm->name();
    state.firing = alarm->firing();
    state.fired_total = alarm->fired_total();
    state.value = alarm->last_value();
    state.threshold = alarm->threshold();
    state.detail = alarm == &alarm_class_error_ ? class_error_detail_ : pair_detail_;
    snap.alarms.push_back(std::move(state));
  }
  snap.quarantined = gate_.quarantined();
  snap.suppressed_alarms_total = gate_.suppressed_total();
  return snap;
}

// -------------------------------------- checkpoint round-trip ---------------

namespace {

void write_alarm_state(ByteWriter& w, const ThresholdAlarm& alarm) {
  w.write<std::uint8_t>(alarm.firing() ? 1 : 0);
  w.write<double>(alarm.last_value());
  w.write<std::uint64_t>(alarm.fired_total());
}

void read_alarm_state(ByteReader& r, ThresholdAlarm& alarm) {
  const bool firing = r.read<std::uint8_t>() != 0;
  const double last_value = r.read<double>();
  const auto fired_total = r.read<std::uint64_t>();
  alarm.restore(firing, last_value, fired_total);
}

}  // namespace

void ModelQualityStats::serialize(ByteWriter& writer) const {
  writer.write<std::uint32_t>(config_.num_classes);
  writer.write<std::uint32_t>(config_.dim);
  writer.write<double>(config_.window.span.to_seconds());
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.window.buckets));
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.dim_buckets));
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.calibration_bins));
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.top_pairs));
  writer.write<std::uint64_t>(static_cast<std::uint64_t>(config_.bottom_dims));
  writer.write<double>(config_.alarm_class_error_rate);
  writer.write<double>(config_.alarm_confusion_pair);
  writer.write<std::uint64_t>(config_.min_class_samples);
  writer.write<double>(config_.saturation_band);

  writer.write<std::uint64_t>(window_confusion_.cursor());
  for (const std::vector<std::uint64_t>& slot : window_confusion_.slots()) {
    writer.write_vector(slot);
  }
  if (dims_.has_value()) {
    writer.write<std::uint64_t>(dims_->cursor());
    for (const DimSlot& slot : dims_->slots()) {
      for (const double v : slot.class_sums) {
        writer.write<double>(v);
      }
      for (const double v : slot.sums) {
        writer.write<double>(v);
      }
      for (const double v : slot.sumsq) {
        writer.write<double>(v);
      }
      writer.write_vector(slot.counts);
    }
  }

  writer.write_vector(confusion_);
  writer.write_vector(class_served_);
  for (const ModelStatsSnapshot::CalibrationBin& bin : calibration_) {
    writer.write<std::uint64_t>(bin.count);
    writer.write<std::uint64_t>(bin.correct);
    writer.write<double>(bin.confidence_sum);
  }
  writer.write<std::uint64_t>(samples_total_);

  writer.write<double>(norm_min_);
  writer.write<double>(norm_mean_);
  writer.write<double>(saturation_);
  writer.write<double>(separation_min_);
  writer.write<double>(separation_mean_);
  writer.write<std::uint64_t>(model_refreshes_);

  write_alarm_state(writer, alarm_class_error_);
  write_alarm_state(writer, alarm_pair_);
  writer.write_string(class_error_detail_);
  writer.write_string(pair_detail_);
  detail::write_alarm_events(writer, events_);
  gate_.serialize(writer);
}

ModelQualityStats ModelQualityStats::deserialize(ByteReader& reader) {
  ModelStatsConfig config;
  config.num_classes = reader.read<std::uint32_t>();
  config.dim = reader.read<std::uint32_t>();
  config.window.span = SimDuration::seconds(reader.read<double>());
  config.window.buckets = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.dim_buckets = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.calibration_bins = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.top_pairs = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.bottom_dims = static_cast<std::size_t>(reader.read<std::uint64_t>());
  config.alarm_class_error_rate = reader.read<double>();
  config.alarm_confusion_pair = reader.read<double>();
  config.min_class_samples = reader.read<std::uint64_t>();
  config.saturation_band = reader.read<double>();

  ModelQualityStats stats(config);
  stats.window_confusion_.set_cursor(reader.read<std::uint64_t>());
  for (std::vector<std::uint64_t>& slot : stats.window_confusion_.slots_mutable()) {
    std::vector<std::uint64_t> cells = reader.read_vector<std::uint64_t>();
    HDC_CHECK(cells.size() == slot.size(),
              "serialized confusion window does not match num_classes");
    slot = std::move(cells);
  }
  if (stats.dims_.has_value()) {
    stats.dims_->set_cursor(reader.read<std::uint64_t>());
    for (DimSlot& slot : stats.dims_->slots_mutable()) {
      for (double& v : slot.class_sums) {
        v = reader.read<double>();
      }
      for (double& v : slot.sums) {
        v = reader.read<double>();
      }
      for (double& v : slot.sumsq) {
        v = reader.read<double>();
      }
      std::vector<std::uint64_t> counts = reader.read_vector<std::uint64_t>();
      HDC_CHECK(counts.size() == slot.counts.size(),
                "serialized dim window does not match num_classes");
      slot.counts = std::move(counts);
    }
  }

  std::vector<std::uint64_t> confusion = reader.read_vector<std::uint64_t>();
  HDC_CHECK(confusion.size() == stats.confusion_.size(),
            "serialized confusion matrix does not match num_classes");
  stats.confusion_ = std::move(confusion);
  std::vector<std::uint64_t> served = reader.read_vector<std::uint64_t>();
  HDC_CHECK(served.size() == stats.class_served_.size(),
            "serialized class-served counts do not match num_classes");
  stats.class_served_ = std::move(served);
  for (ModelStatsSnapshot::CalibrationBin& bin : stats.calibration_) {
    bin.count = reader.read<std::uint64_t>();
    bin.correct = reader.read<std::uint64_t>();
    bin.confidence_sum = reader.read<double>();
  }
  stats.samples_total_ = reader.read<std::uint64_t>();

  stats.norm_min_ = reader.read<double>();
  stats.norm_mean_ = reader.read<double>();
  stats.saturation_ = reader.read<double>();
  stats.separation_min_ = reader.read<double>();
  stats.separation_mean_ = reader.read<double>();
  stats.model_refreshes_ = reader.read<std::uint64_t>();

  read_alarm_state(reader, stats.alarm_class_error_);
  read_alarm_state(reader, stats.alarm_pair_);
  stats.class_error_detail_ = reader.read_string();
  stats.pair_detail_ = reader.read_string();
  stats.events_ = detail::read_alarm_events(reader);
  stats.gate_.restore(reader);
  return stats;
}

// --------------------------------------------- snapshot rendering -----------

namespace {

void append_field(std::string& out, const char* key, double value, bool leading_comma) {
  if (leading_comma) {
    out.push_back(',');
  }
  detail::append_json_string(out, key);
  out.push_back(':');
  detail::append_json_number(out, value);
}

void append_matrix(std::string& out, const std::vector<std::uint64_t>& cells,
                   std::size_t classes) {
  out.push_back('[');
  for (std::size_t a = 0; a < classes; ++a) {
    if (a > 0) {
      out.push_back(',');
    }
    out.push_back('[');
    for (std::size_t b = 0; b < classes; ++b) {
      if (b > 0) {
        out.push_back(',');
      }
      out += std::to_string(cells[a * classes + b]);
    }
    out.push_back(']');
  }
  out.push_back(']');
}

void append_gate_metric(std::string& out, const char* name, double value,
                        const char* unit, const char* kind, const char* better) {
  out.push_back(',');
  detail::append_json_string(out, name);
  out += ":{\"value\":";
  detail::append_json_number(out, value);
  out += ",\"unit\":";
  detail::append_json_string(out, unit);
  out += ",\"kind\":";
  detail::append_json_string(out, kind);
  out += ",\"better\":";
  detail::append_json_string(out, better);
  out.push_back('}');
}

void prom_line(std::string& out, const char* family, const std::string& labels,
               double value) {
  char buf[224];
  if (labels.empty()) {
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", family, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s{%s} %.9g\n", family, labels.c_str(), value);
  }
  out += buf;
}

void prom_header(std::string& out, const char* family, const char* type,
                 const char* help) {
  out += "# HELP ";
  out += family;
  out.push_back(' ');
  out += help;
  out += "\n# TYPE ";
  out += family;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string ModelStatsSnapshot::to_json() const {
  const std::size_t classes = num_classes;
  std::string out;
  out += "{\"samples\":" + std::to_string(samples_total);
  out += ",\"classes\":" + std::to_string(num_classes);
  out += ",\"dim\":" + std::to_string(dim);

  out += ",\"confusion\":";
  append_matrix(out, confusion, classes);
  out += ",\"class_served\":[";
  for (std::size_t c = 0; c < class_served.size(); ++c) {
    if (c > 0) {
      out.push_back(',');
    }
    out += std::to_string(class_served[c]);
  }
  out += "]";

  out += ",\"window\":{\"samples\":" + std::to_string(window_samples);
  append_field(out, "accuracy", window_accuracy, true);
  out += ",\"confusion\":";
  append_matrix(out, window_confusion, classes);
  out += ",\"recall\":[";
  for (std::size_t c = 0; c < window_recall.size(); ++c) {
    if (c > 0) {
      out.push_back(',');
    }
    detail::append_json_number(out, window_recall[c]);
  }
  out += "],\"precision\":[";
  for (std::size_t c = 0; c < window_precision.size(); ++c) {
    if (c > 0) {
      out.push_back(',');
    }
    detail::append_json_number(out, window_precision[c]);
  }
  out += "],\"top_pairs\":[";
  for (std::size_t i = 0; i < top_pairs.size(); ++i) {
    const ConfusionPair& pair = top_pairs[i];
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"actual\":" + std::to_string(pair.actual) +
           ",\"predicted\":" + std::to_string(pair.predicted) +
           ",\"count\":" + std::to_string(pair.count);
    append_field(out, "fraction", pair.fraction, true);
    out.push_back('}');
  }
  out += "]}";

  out += ",\"calibration\":{";
  append_field(out, "ece", ece, false);
  out += ",\"bins\":[";
  for (std::size_t i = 0; i < calibration.size(); ++i) {
    const CalibrationBin& bin = calibration[i];
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"count\":" + std::to_string(bin.count) +
           ",\"correct\":" + std::to_string(bin.correct);
    append_field(out, "mean_confidence", bin.count == 0 ? 0.0
                     : bin.confidence_sum / static_cast<double>(bin.count),
                 true);
    out.push_back('}');
  }
  out += "]}";

  out += ",\"health\":{";
  append_field(out, "norm_min", norm_min, false);
  append_field(out, "norm_mean", norm_mean, true);
  append_field(out, "saturation_fraction", saturation_fraction, true);
  append_field(out, "separation_min", separation_min, true);
  append_field(out, "separation_mean", separation_mean, true);
  out += ",\"refreshes\":" + std::to_string(model_refreshes);
  out += "}";

  out += ",\"dims\":{\"window_samples\":" + std::to_string(dim_window_samples);
  append_field(out, "score_mean", dim_score_mean, true);
  out += ",\"bottom\":[";
  for (std::size_t i = 0; i < bottom_dims.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += "{\"dim\":" + std::to_string(bottom_dims[i].dim);
    append_field(out, "score", bottom_dims[i].score, true);
    out.push_back('}');
  }
  out += "]}";

  out += ",\"alarms\":{";
  for (std::size_t i = 0; i < alarms.size(); ++i) {
    const AlarmState& alarm = alarms[i];
    if (i > 0) {
      out.push_back(',');
    }
    detail::append_json_string(out, alarm.name);
    out += ":{\"firing\":";
    out += alarm.firing ? "true" : "false";
    out += ",\"fired_total\":" + std::to_string(alarm.fired_total);
    append_field(out, "value", alarm.value, true);
    append_field(out, "threshold", alarm.threshold, true);
    out += ",\"detail\":";
    detail::append_json_string(out, alarm.detail);
    out.push_back('}');
  }
  out += "},\"quarantined\":";
  out += quarantined ? "true" : "false";
  out += ",\"suppressed_alarms_total\":" + std::to_string(suppressed_alarms_total);
  out += "}";
  return out;
}

std::string ModelStatsSnapshot::metrics_json() const {
  std::string out;
  append_gate_metric(out, "model.accuracy", window_accuracy, "fraction", "sim",
                     "higher");
  append_gate_metric(out, "model.ece", ece, "fraction", "sim", "lower");
  append_gate_metric(out, "model.separation_min", separation_min, "fraction", "sim",
                     "higher");
  append_gate_metric(out, "model.samples", static_cast<double>(samples_total), "",
                     "info", "higher");
  append_gate_metric(out, "model.dim_score_mean", dim_score_mean, "fraction", "info",
                     "higher");
  double pair_fired = 0.0;
  for (const AlarmState& alarm : alarms) {
    if (alarm.name == "confusion_pair") {
      pair_fired = static_cast<double>(alarm.fired_total);
    }
  }
  append_gate_metric(out, "model.alarms.confusion_pair.fired_total", pair_fired, "",
                     "info", "lower");
  return out;
}

std::string ModelStatsSnapshot::to_prometheus() const {
  std::string out;
  prom_header(out, "hdc_model_samples_total", "counter",
              "Samples recorded by the model-quality monitor (lifetime)");
  prom_line(out, "hdc_model_samples_total", "", static_cast<double>(samples_total));
  prom_header(out, "hdc_model_class_served_total", "counter",
              "Served samples per true class (lifetime)");
  for (std::size_t c = 0; c < class_served.size(); ++c) {
    prom_line(out, "hdc_model_class_served_total",
              "class=\"" + std::to_string(c) + "\"",
              static_cast<double>(class_served[c]));
  }
  prom_header(out, "hdc_model_class_recall", "gauge",
              "Windowed prequential recall per true class");
  for (std::size_t c = 0; c < window_recall.size(); ++c) {
    prom_line(out, "hdc_model_class_recall", "class=\"" + std::to_string(c) + "\"",
              window_recall[c]);
  }
  prom_header(out, "hdc_model_class_precision", "gauge",
              "Windowed prequential precision per predicted class");
  for (std::size_t c = 0; c < window_precision.size(); ++c) {
    prom_line(out, "hdc_model_class_precision", "class=\"" + std::to_string(c) + "\"",
              window_precision[c]);
  }
  prom_header(out, "hdc_model_window_accuracy", "gauge",
              "Windowed prequential accuracy (confusion diagonal)");
  prom_line(out, "hdc_model_window_accuracy", "", window_accuracy);
  prom_header(out, "hdc_model_confusion_pair", "gauge",
              "Top confusable class pairs in the window (count)");
  for (const ConfusionPair& pair : top_pairs) {
    prom_line(out, "hdc_model_confusion_pair",
              "actual=\"" + std::to_string(pair.actual) + "\",predicted=\"" +
                  std::to_string(pair.predicted) + "\"",
              static_cast<double>(pair.count));
  }
  prom_header(out, "hdc_model_ece", "gauge", "Expected calibration error (lifetime)");
  prom_line(out, "hdc_model_ece", "", ece);
  prom_header(out, "hdc_model_calibration_count", "gauge",
              "Samples per calibration confidence bin (lifetime)");
  for (std::size_t i = 0; i < calibration.size(); ++i) {
    prom_line(out, "hdc_model_calibration_count", "bin=\"" + std::to_string(i) + "\"",
              static_cast<double>(calibration[i].count));
  }
  prom_header(out, "hdc_model_norm_min", "gauge", "Smallest class-vector L2 norm");
  prom_line(out, "hdc_model_norm_min", "", norm_min);
  prom_header(out, "hdc_model_norm_mean", "gauge", "Mean class-vector L2 norm");
  prom_line(out, "hdc_model_norm_mean", "", norm_mean);
  prom_header(out, "hdc_model_saturation_fraction", "gauge",
              "Fraction of class-vector entries near the row absmax");
  prom_line(out, "hdc_model_saturation_fraction", "", saturation_fraction);
  prom_header(out, "hdc_model_separation_min", "gauge",
              "Smallest pairwise cosine separation between class vectors");
  prom_line(out, "hdc_model_separation_min", "", separation_min);
  prom_header(out, "hdc_model_separation_mean", "gauge",
              "Mean pairwise cosine separation between class vectors");
  prom_line(out, "hdc_model_separation_mean", "", separation_mean);
  prom_header(out, "hdc_model_refreshes_total", "counter",
              "Model deployments observed (lifetime)");
  prom_line(out, "hdc_model_refreshes_total", "", static_cast<double>(model_refreshes));
  prom_header(out, "hdc_model_dim_score", "gauge",
              "Bottom-K per-dimension discriminability scores");
  for (const DimScore& score : bottom_dims) {
    prom_line(out, "hdc_model_dim_score", "dim=\"" + std::to_string(score.dim) + "\"",
              score.score);
  }
  prom_header(out, "hdc_model_alarm_firing", "gauge",
              "1 while the model alarm condition holds");
  for (const AlarmState& alarm : alarms) {
    prom_line(out, "hdc_model_alarm_firing", "alarm=\"" + alarm.name + "\"",
              alarm.firing ? 1.0 : 0.0);
  }
  prom_header(out, "hdc_model_alarm_fired_total", "counter",
              "Edge-triggered model alarm fire count");
  for (const AlarmState& alarm : alarms) {
    prom_line(out, "hdc_model_alarm_fired_total", "alarm=\"" + alarm.name + "\"",
              static_cast<double>(alarm.fired_total));
  }
  return out;
}

}  // namespace hdc::obs
