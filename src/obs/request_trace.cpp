#include "obs/request_trace.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace hdc::obs {

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kBatchWait: return "batch_wait";
    case Stage::kBackoff: return "backoff";
    case Stage::kSwap: return "swap";
    case Stage::kTransfer: return "transfer";
    case Stage::kDevice: return "device";
    case Stage::kDeviceHost: return "device_host";
    case Stage::kHost: return "host";
    case Stage::kUpdate: return "update";
    case Stage::kOther: return "other";
  }
  return "unknown";
}

const char* outcome_name(RequestOutcome outcome) noexcept {
  switch (outcome) {
    case RequestOutcome::kServed: return "served";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kExpired: return "expired";
  }
  return "unknown";
}

const char* exemplar_reason_name(ExemplarReason reason) noexcept {
  switch (reason) {
    case ExemplarReason::kShed: return "shed";
    case ExemplarReason::kExpired: return "expired";
    case ExemplarReason::kTierFallback: return "tier_fallback";
    case ExemplarReason::kTailLatency: return "tail_latency";
  }
  return "unknown";
}

SimDuration RequestAttribution::total() const {
  // Fixed index order with kOther last: this replays the accumulation order
  // finalize() used to compute the kOther residual, so the final add is
  // partial + (latency - partial) == latency bit-exactly (Sterbenz lemma —
  // the operands of the last add differ by at most the span-grouping
  // rounding, far inside the [1/2, 2] ratio the lemma needs).
  SimDuration sum;
  for (std::size_t i = 0; i < kNumStages; ++i) sum += stages[i];
  return sum;
}

double RequestAttribution::fraction(Stage s) const {
  const double denom = total().to_seconds();
  if (denom == 0.0) return 0.0;
  return (*this)[s].to_seconds() / denom;
}

RequestAttribution& RequestAttribution::operator+=(const RequestAttribution& other) {
  for (std::size_t i = 0; i < kNumStages; ++i) stages[i] += other.stages[i];
  return *this;
}

void RequestTrace::begin(std::uint64_t id, SimDuration arrival_time) {
  request_id = id;
  arrival = arrival_time;
  cursor = arrival_time;
}

void RequestTrace::append(Stage stage, SimDuration duration, std::uint32_t sample,
                          std::uint32_t attempt) {
  spans.push_back(StageSpan{stage, cursor, duration, sample, attempt});
  cursor += duration;
}

void RequestTrace::finalize(SimDuration end_time) {
  end = end_time;
  RequestAttribution grouped{};
  for (const StageSpan& span : spans) {
    grouped[span.stage] += span.duration;
  }
  grouped[Stage::kOther] = SimDuration();
  SimDuration partial;
  for (std::size_t i = 0; i + 1 < kNumStages; ++i) partial += grouped.stages[i];
  grouped[Stage::kOther] = (end - arrival) - partial;
  attribution = grouped;
}

std::size_t RequestTrace::approx_bytes() const {
  return sizeof(RequestTrace) + spans.size() * sizeof(StageSpan);
}

void ExemplarConfig::validate() const {
  if (max_bytes == 0) {
    throw Error("ExemplarConfig.max_bytes must be positive");
  }
  if (max_per_reason == 0) {
    throw Error("ExemplarConfig.max_per_reason must be positive");
  }
}

ExemplarStore::ExemplarStore(ExemplarConfig config) : config_(config) {
  config_.validate();
}

void ExemplarStore::evict_front() {
  const RequestExemplar& victim = exemplars_.front();
  bytes_ -= victim.trace.approx_bytes();
  --per_reason_[static_cast<std::size_t>(victim.reason)];
  exemplars_.pop_front();
  ++evicted_;
}

void ExemplarStore::evict_oldest_of(ExemplarReason reason) {
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    if (exemplars_[i].reason != reason) continue;
    bytes_ -= exemplars_[i].trace.approx_bytes();
    --per_reason_[static_cast<std::size_t>(reason)];
    exemplars_.erase(exemplars_.begin() + static_cast<std::ptrdiff_t>(i));
    ++evicted_;
    return;
  }
}

bool ExemplarStore::offer(ExemplarReason reason, RequestTrace trace) {
  ++offered_;
  const std::size_t size = trace.approx_bytes();
  if (size > config_.max_bytes) {
    return false;  // can never fit, even alone — drop whole, never truncate
  }
  if (per_reason_[static_cast<std::size_t>(reason)] >= config_.max_per_reason) {
    evict_oldest_of(reason);
  }
  while (bytes_ + size > config_.max_bytes && !exemplars_.empty()) {
    evict_front();
  }
  bytes_ += size;
  if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
  ++per_reason_[static_cast<std::size_t>(reason)];
  exemplars_.push_back(RequestExemplar{reason, std::move(trace)});
  return true;
}

const RequestTrace* ExemplarStore::find(std::uint64_t request_id) const {
  for (const RequestExemplar& exemplar : exemplars_) {
    if (exemplar.trace.request_id == request_id) return &exemplar.trace;
  }
  return nullptr;
}

std::string request_trace_json(const RequestTrace& trace, const char* reason) {
  using detail::append_json_number_exact;
  using detail::append_json_string;
  std::string out;
  out += "{\"schema\":\"hdc-request-trace-v1\",\"request_id\":";
  out += std::to_string(trace.request_id);
  out += ",\"outcome\":";
  append_json_string(out, outcome_name(trace.outcome));
  if (reason != nullptr) {
    out += ",\"reason\":";
    append_json_string(out, reason);
  }
  out += ",\"tier\":";
  out += std::to_string(static_cast<unsigned>(trace.tier));
  out += ",\"samples\":";
  out += std::to_string(trace.samples);
  out += ",\"faulty\":";
  out += trace.faulty ? "true" : "false";
  out += ",\"arrival_s\":";
  append_json_number_exact(out, trace.arrival.to_seconds());
  out += ",\"end_s\":";
  append_json_number_exact(out, trace.end.to_seconds());
  out += ",\"latency_s\":";
  append_json_number_exact(out, trace.latency().to_seconds());
  out += ",\"attribution\":{";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (i != 0) out += ',';
    append_json_string(out, stage_name(static_cast<Stage>(i)));
    out += ':';
    append_json_number_exact(out, trace.attribution.stages[i].to_seconds());
  }
  out += "},\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const StageSpan& span = trace.spans[i];
    if (i != 0) out += ',';
    out += "{\"stage\":";
    append_json_string(out, stage_name(span.stage));
    out += ",\"start_s\":";
    append_json_number_exact(out, span.start.to_seconds());
    out += ",\"dur_s\":";
    append_json_number_exact(out, span.duration.to_seconds());
    out += ",\"sample\":";
    out += std::to_string(span.sample);
    out += ",\"attempt\":";
    out += std::to_string(span.attempt);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ExemplarStore::to_jsonl() const {
  std::string out;
  for (const RequestExemplar& exemplar : exemplars_) {
    out += request_trace_json(exemplar.trace, exemplar_reason_name(exemplar.reason));
    out += '\n';
  }
  return out;
}

}  // namespace hdc::obs
