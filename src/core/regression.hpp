#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/encoder.hpp"
#include "tensor/matrix.hpp"

namespace hdc::core {

/// Hyperdimensional regression in the RegHD style (the paper's reference
/// [28]): a single model hypervector `M` is trained so that the similarity
/// `E . M` predicts a scalar target. Updates are the regression analog of
/// bundling — each sample pulls `M` along its encoding proportionally to the
/// prediction error:
///
///     M += lr * (y - E . M) * E / (E . E)
///
/// which is normalized LMS in hyperspace; like the
/// classifier it lowers to one dense accelerator layer at inference.
struct RegressionConfig {
  std::uint32_t dim = 4096;
  std::uint32_t epochs = 20;
  float learning_rate = 0.5F;
  std::uint64_t seed = 42;

  void validate() const;
};

struct RegressionResult {
  std::vector<float> model;           ///< the d-wide model hypervector
  std::vector<double> epoch_rmse;     ///< training RMSE per epoch
};

class HdRegressor {
 public:
  HdRegressor(std::uint32_t num_features, RegressionConfig config);

  const Encoder& encoder() const noexcept { return encoder_; }
  const RegressionConfig& config() const noexcept { return config_; }

  /// Fits targets (one per sample row); returns the trained model and the
  /// per-epoch training RMSE (monotone decreasing on well-posed problems).
  RegressionResult fit(const tensor::MatrixF& samples, std::span<const float> targets);

  /// Prediction with a trained model hypervector.
  float predict(std::span<const float> sample, std::span<const float> model) const;

 private:
  RegressionConfig config_;
  Encoder encoder_;
};

}  // namespace hdc::core
