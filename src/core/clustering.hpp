#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/encoder.hpp"
#include "data/dataset.hpp"

namespace hdc::core {

/// Hyperdimensional k-means-style clustering (the application family the
/// paper cites as DUAL [30]): samples are encoded once, cluster centroids
/// live in hyperspace as bundled hypervectors, and the assign/update loop
/// runs entirely on similarities — the same associative-search primitive the
/// classifier uses, so the whole thing lowers to the accelerator-friendly
/// wide-NN form too.
struct ClusteringConfig {
  std::uint32_t clusters = 4;
  std::uint32_t dim = 4096;
  std::uint32_t max_iterations = 20;
  std::uint64_t seed = 42;
  /// Stop when fewer than this fraction of samples change cluster.
  double convergence_fraction = 0.001;
  /// Independent restarts (different init seeds); the run with the highest
  /// mean centroid similarity wins — the standard defense against k-means
  /// local optima.
  std::uint32_t restarts = 8;

  void validate() const;
};

struct ClusteringResult {
  std::vector<std::uint32_t> assignments;  ///< cluster id per sample
  tensor::MatrixF centroids;               ///< clusters x dim hypervectors
  std::uint32_t iterations_run = 0;
  bool converged = false;
};

/// Runs HD clustering over `samples` (one row per sample) with the given
/// encoder. Centroids initialize from distinct random samples (k-means++-
/// lite: greedy farthest-first after a random seed point).
ClusteringResult cluster(const Encoder& encoder, const tensor::MatrixF& samples,
                         const ClusteringConfig& config);

/// Clustering quality: mean cosine similarity of each encoded sample to its
/// centroid (higher = tighter clusters). Exposed for tests/benches.
double mean_centroid_similarity(const Encoder& encoder, const tensor::MatrixF& samples,
                                const ClusteringResult& result);

}  // namespace hdc::core
