#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace hdc::core {

/// The classical ID-level ("linear") HDC encoding the paper contrasts its
/// non-linear random-projection encoding against (Section III-A: "Most
/// prior works have tried to encode the input using linear mapping [21].
/// However, in this work, we adopt a non-linear mapping which achieves
/// higher learning accuracy.").
///
/// Each feature position i owns a random bipolar ID hypervector; each
/// quantized feature *value* maps to a level hypervector from a correlated
/// chain (adjacent levels share most components, the extremes are nearly
/// orthogonal). A sample encodes as
///
///     E = sum_i  ID_i (*) LEVEL(f_i)
///
/// where (*) is elementwise binding. The encoding is linear in the level
/// vectors — hence the paper's "linear mapping" label — and serves as the
/// accuracy baseline for ablation_encoding.
struct LevelEncoderConfig {
  std::uint32_t dim = 4096;
  std::uint32_t levels = 32;  ///< quantization levels across [min, max]
  std::uint64_t seed = 42;
  float min_value = 0.0F;  ///< feature range the level chain spans
  float max_value = 1.0F;

  void validate() const;
};

class LevelEncoder {
 public:
  LevelEncoder(std::uint32_t num_features, LevelEncoderConfig config);

  std::uint32_t num_features() const noexcept { return num_features_; }
  std::uint32_t dim() const noexcept { return config_.dim; }
  const LevelEncoderConfig& config() const noexcept { return config_; }

  /// Level index for a raw feature value (clamped to the configured range).
  std::uint32_t level_of(float value) const;

  /// Encodes one sample: sum over features of ID_i * LEVEL(level_of(f_i)).
  std::vector<float> encode(std::span<const float> sample) const;
  tensor::MatrixF encode_batch(const tensor::MatrixF& samples) const;

  /// Exposed for the correlation property tests.
  std::span<const float> level_vector(std::uint32_t level) const;
  std::span<const float> id_vector(std::uint32_t feature) const;

 private:
  std::uint32_t num_features_;
  LevelEncoderConfig config_;
  tensor::MatrixF ids_;     ///< num_features x dim, bipolar +/-1
  tensor::MatrixF levels_;  ///< levels x dim, correlated bipolar chain
};

}  // namespace hdc::core
