#include "core/online.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

WindowedRate::WindowedRate(std::uint32_t capacity) : ring_(capacity, 0) {
  HDC_CHECK(capacity > 0, "windowed rate needs a positive capacity");
}

void WindowedRate::add(bool value) {
  if (filled_ == ring_.size()) {
    sum_ -= ring_[head_];
  } else {
    ++filled_;
  }
  ring_[head_] = value ? 1 : 0;
  sum_ += ring_[head_];
  head_ = (head_ + 1) % ring_.size();
}

double WindowedRate::rate() const {
  return filled_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(filled_);
}

void WindowedRate::reset() {
  std::fill(ring_.begin(), ring_.end(), 0);
  filled_ = 0;
  sum_ = 0;
  head_ = 0;
}

void WindowedRate::serialize(ByteWriter& writer) const {
  writer.write_vector(ring_);
  writer.write<std::uint64_t>(filled_);
  writer.write<std::uint64_t>(sum_);
  writer.write<std::uint64_t>(head_);
}

WindowedRate WindowedRate::deserialize(ByteReader& reader) {
  std::vector<std::uint8_t> ring = reader.read_vector<std::uint8_t>(1ULL << 24);
  HDC_CHECK(!ring.empty(), "serialized windowed rate has an empty ring");
  WindowedRate rate(static_cast<std::uint32_t>(ring.size()));
  rate.ring_ = std::move(ring);
  rate.filled_ = reader.read<std::uint64_t>();
  rate.sum_ = reader.read<std::uint64_t>();
  rate.head_ = static_cast<std::size_t>(reader.read<std::uint64_t>());
  HDC_CHECK(rate.filled_ <= rate.ring_.size() && rate.head_ < rate.ring_.size(),
            "serialized windowed rate counters out of range");
  return rate;
}

void OnlineStats::serialize(ByteWriter& writer) const {
  writer.write<std::uint64_t>(samples_seen);
  writer.write<std::uint64_t>(errors);
  recent.serialize(writer);
}

OnlineStats OnlineStats::deserialize(ByteReader& reader) {
  OnlineStats stats;
  stats.samples_seen = reader.read<std::uint64_t>();
  stats.errors = reader.read<std::uint64_t>();
  stats.recent = WindowedRate::deserialize(reader);
  return stats;
}

OnlineLearner::OnlineLearner(std::uint32_t num_features, std::uint32_t num_classes,
                             OnlineConfig config)
    : config_(config),
      encoder_(num_features, config.dim, config.seed),
      model_(num_classes, config.dim),
      stats_(config.error_window) {
  HDC_CHECK(config_.learning_rate > 0.0F, "learning rate must be positive");
}

std::uint32_t OnlineLearner::learn(std::span<const float> sample, std::uint32_t label) {
  HDC_CHECK(label < model_.num_classes(), "label out of range");
  const auto encoded = encoder_.encode(sample);
  const auto scores = model_.scores(encoded, config_.similarity);
  const auto predicted = static_cast<std::uint32_t>(tensor::argmax(scores));

  ++stats_.samples_seen;
  stats_.recent.add(predicted != label);
  if (predicted != label) {
    ++stats_.errors;
    // Cosine scores live in [-1, 1]; clamp so the adaptive factor stays in
    // [0, 2] even for the dot metric or a cold (all-zero) model.
    const float sim_true = std::clamp(scores[label], -1.0F, 1.0F);
    const float sim_pred = std::clamp(scores[predicted], -1.0F, 1.0F);
    model_.bundle(label, encoded, config_.learning_rate * (1.0F - sim_true));
    model_.detach(predicted, encoded, config_.learning_rate * (1.0F - sim_pred));
  }
  return predicted;
}

double OnlineLearner::learn_batch(const data::Dataset& batch) {
  batch.validate();
  HDC_CHECK(batch.num_features() == encoder_.num_features(),
            "batch feature count disagrees with learner");
  HDC_CHECK(batch.num_classes <= model_.num_classes(),
            "batch declares more classes than the learner was built for");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch.num_samples(); ++i) {
    correct += learn(batch.features.row(i), batch.labels[i]) == batch.labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(batch.num_samples());
}

std::uint32_t OnlineLearner::predict(std::span<const float> sample) const {
  return model_.predict(encoder_.encode(sample), config_.similarity);
}

std::vector<float> OnlineLearner::encode(std::span<const float> sample) const {
  return encoder_.encode(sample);
}

OnlineLearner::Decision OnlineLearner::decide(std::span<const float> sample) const {
  return decide_encoded(encoder_.encode(sample));
}

OnlineLearner::Decision OnlineLearner::decide_encoded(
    std::span<const float> encoded) const {
  const auto scores = model_.scores(encoded, config_.similarity);
  Decision decision;
  decision.predicted = static_cast<std::uint32_t>(tensor::argmax(scores));
  decision.top1 = scores[decision.predicted];
  decision.top2 = decision.top1;
  bool has_second = false;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (c == decision.predicted) {
      continue;
    }
    if (!has_second || scores[c] > decision.top2) {
      decision.top2 = scores[c];
      has_second = true;
    }
  }
  if (!has_second) {
    decision.top2 = 0.0F;  // single-class model: margin degenerates to top1
  }
  return decision;
}

TrainedClassifier OnlineLearner::freeze() const {
  return TrainedClassifier{Encoder(encoder_.base()), HdModel(model_.class_hypervectors())};
}

void OnlineLearner::reset_stats() { stats_ = OnlineStats(config_.error_window); }

namespace {

void write_matrix(ByteWriter& writer, const tensor::MatrixF& m) {
  writer.write<std::uint64_t>(m.rows());
  writer.write<std::uint64_t>(m.cols());
  writer.write_vector(m.storage());
}

tensor::MatrixF read_matrix(ByteReader& reader) {
  const auto rows = reader.read<std::uint64_t>();
  const auto cols = reader.read<std::uint64_t>();
  HDC_CHECK(rows > 0 && cols > 0, "serialized matrix has an empty dimension");
  HDC_CHECK(rows * cols <= (1ULL << 31), "serialized matrix exceeds sanity bound");
  std::vector<float> data = reader.read_vector<float>();
  HDC_CHECK(data.size() == rows * cols, "serialized matrix payload size mismatch");
  return tensor::MatrixF(rows, cols, std::move(data));
}

}  // namespace

OnlineLearner::OnlineLearner(OnlineConfig config, Encoder encoder, HdModel model,
                             OnlineStats stats)
    : config_(config),
      encoder_(std::move(encoder)),
      model_(std::move(model)),
      stats_(std::move(stats)) {}

void OnlineLearner::serialize(ByteWriter& writer) const {
  writer.write<std::uint32_t>(config_.dim);
  writer.write<std::uint64_t>(config_.seed);
  writer.write<float>(config_.learning_rate);
  writer.write<std::uint8_t>(static_cast<std::uint8_t>(config_.similarity));
  writer.write<std::uint32_t>(config_.error_window);
  write_matrix(writer, encoder_.base());
  write_matrix(writer, model_.class_hypervectors());
  stats_.serialize(writer);
}

OnlineLearner OnlineLearner::deserialize(ByteReader& reader) {
  OnlineConfig config;
  config.dim = reader.read<std::uint32_t>();
  config.seed = reader.read<std::uint64_t>();
  config.learning_rate = reader.read<float>();
  const auto similarity = reader.read<std::uint8_t>();
  HDC_CHECK(similarity <= static_cast<std::uint8_t>(Similarity::kCosine),
            "serialized similarity metric out of range");
  config.similarity = static_cast<Similarity>(similarity);
  config.error_window = reader.read<std::uint32_t>();
  tensor::MatrixF base = read_matrix(reader);
  tensor::MatrixF class_hvs = read_matrix(reader);
  HDC_CHECK(base.cols() == class_hvs.cols(),
            "serialized learner encoder and model widths disagree");
  OnlineStats stats = OnlineStats::deserialize(reader);
  return OnlineLearner(config, Encoder(std::move(base)), HdModel(std::move(class_hvs)),
                       std::move(stats));
}

}  // namespace hdc::core
