#include "core/online.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

WindowedRate::WindowedRate(std::uint32_t capacity) : ring_(capacity, 0) {
  HDC_CHECK(capacity > 0, "windowed rate needs a positive capacity");
}

void WindowedRate::add(bool value) {
  if (filled_ == ring_.size()) {
    sum_ -= ring_[head_];
  } else {
    ++filled_;
  }
  ring_[head_] = value ? 1 : 0;
  sum_ += ring_[head_];
  head_ = (head_ + 1) % ring_.size();
}

double WindowedRate::rate() const {
  return filled_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(filled_);
}

void WindowedRate::reset() {
  std::fill(ring_.begin(), ring_.end(), 0);
  filled_ = 0;
  sum_ = 0;
  head_ = 0;
}

OnlineLearner::OnlineLearner(std::uint32_t num_features, std::uint32_t num_classes,
                             OnlineConfig config)
    : config_(config),
      encoder_(num_features, config.dim, config.seed),
      model_(num_classes, config.dim),
      stats_(config.error_window) {
  HDC_CHECK(config_.learning_rate > 0.0F, "learning rate must be positive");
}

std::uint32_t OnlineLearner::learn(std::span<const float> sample, std::uint32_t label) {
  HDC_CHECK(label < model_.num_classes(), "label out of range");
  const auto encoded = encoder_.encode(sample);
  const auto scores = model_.scores(encoded, config_.similarity);
  const auto predicted = static_cast<std::uint32_t>(tensor::argmax(scores));

  ++stats_.samples_seen;
  stats_.recent.add(predicted != label);
  if (predicted != label) {
    ++stats_.errors;
    // Cosine scores live in [-1, 1]; clamp so the adaptive factor stays in
    // [0, 2] even for the dot metric or a cold (all-zero) model.
    const float sim_true = std::clamp(scores[label], -1.0F, 1.0F);
    const float sim_pred = std::clamp(scores[predicted], -1.0F, 1.0F);
    model_.bundle(label, encoded, config_.learning_rate * (1.0F - sim_true));
    model_.detach(predicted, encoded, config_.learning_rate * (1.0F - sim_pred));
  }
  return predicted;
}

double OnlineLearner::learn_batch(const data::Dataset& batch) {
  batch.validate();
  HDC_CHECK(batch.num_features() == encoder_.num_features(),
            "batch feature count disagrees with learner");
  HDC_CHECK(batch.num_classes <= model_.num_classes(),
            "batch declares more classes than the learner was built for");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch.num_samples(); ++i) {
    correct += learn(batch.features.row(i), batch.labels[i]) == batch.labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(batch.num_samples());
}

std::uint32_t OnlineLearner::predict(std::span<const float> sample) const {
  return model_.predict(encoder_.encode(sample), config_.similarity);
}

OnlineLearner::Decision OnlineLearner::decide(std::span<const float> sample) const {
  const auto scores = model_.scores(encoder_.encode(sample), config_.similarity);
  Decision decision;
  decision.predicted = static_cast<std::uint32_t>(tensor::argmax(scores));
  decision.top1 = scores[decision.predicted];
  decision.top2 = decision.top1;
  bool has_second = false;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (c == decision.predicted) {
      continue;
    }
    if (!has_second || scores[c] > decision.top2) {
      decision.top2 = scores[c];
      has_second = true;
    }
  }
  if (!has_second) {
    decision.top2 = 0.0F;  // single-class model: margin degenerates to top1
  }
  return decision;
}

TrainedClassifier OnlineLearner::freeze() const {
  return TrainedClassifier{Encoder(encoder_.base()), HdModel(model_.class_hypervectors())};
}

void OnlineLearner::reset_stats() { stats_ = OnlineStats(config_.error_window); }

}  // namespace hdc::core
