#include "core/level_encoder.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hdc::core {

void LevelEncoderConfig::validate() const {
  HDC_CHECK(dim > 0, "level encoder needs a positive width");
  HDC_CHECK(levels >= 2, "level encoder needs at least two levels");
  HDC_CHECK(min_value < max_value, "level range must be non-degenerate");
}

LevelEncoder::LevelEncoder(std::uint32_t num_features, LevelEncoderConfig config)
    : num_features_(num_features),
      config_(config),
      ids_(num_features, config.dim),
      levels_(config.levels, config.dim) {
  HDC_CHECK(num_features_ > 0, "level encoder needs at least one feature");
  config_.validate();
  Rng rng(config_.seed);

  // Random bipolar ID per feature position.
  for (auto& v : ids_.storage()) {
    v = rng.next_below(2) == 0 ? -1.0F : 1.0F;
  }

  // Correlated level chain: level l flips a *disjoint* slice of a fixed
  // random permutation relative to level 0, so the Hamming distance between
  // levels grows strictly monotonically with their index gap: neighbours
  // differ in d / (2*(levels-1)) positions, the extremes in ~d/2 (near
  // orthogonal) — the textbook level-hypervector construction.
  for (std::uint32_t j = 0; j < config_.dim; ++j) {
    levels_(0, j) = rng.next_below(2) == 0 ? -1.0F : 1.0F;
  }
  const std::vector<std::uint32_t> permutation =
      rng.sample_without_replacement(config_.dim, config_.dim);
  const std::uint32_t flips_per_step =
      std::max<std::uint32_t>(1, config_.dim / (2 * (config_.levels - 1)));
  for (std::uint32_t level = 1; level < config_.levels; ++level) {
    for (std::uint32_t j = 0; j < config_.dim; ++j) {
      levels_(level, j) = levels_(level - 1, j);
    }
    const std::uint32_t begin = (level - 1) * flips_per_step;
    const std::uint32_t end = std::min(level * flips_per_step, config_.dim);
    for (std::uint32_t p = begin; p < end; ++p) {
      levels_(level, permutation[p]) = -levels_(level, permutation[p]);
    }
  }
}

std::uint32_t LevelEncoder::level_of(float value) const {
  const float clamped = std::clamp(value, config_.min_value, config_.max_value);
  const float normalized =
      (clamped - config_.min_value) / (config_.max_value - config_.min_value);
  const auto level = static_cast<std::uint32_t>(normalized * (config_.levels - 1) + 0.5F);
  return std::min(level, config_.levels - 1);
}

std::span<const float> LevelEncoder::level_vector(std::uint32_t level) const {
  HDC_CHECK(level < config_.levels, "level index out of range");
  return levels_.row(level);
}

std::span<const float> LevelEncoder::id_vector(std::uint32_t feature) const {
  HDC_CHECK(feature < num_features_, "feature index out of range");
  return ids_.row(feature);
}

std::vector<float> LevelEncoder::encode(std::span<const float> sample) const {
  HDC_CHECK(sample.size() == num_features_, "sample feature count mismatch");
  std::vector<float> encoded(config_.dim, 0.0F);
  for (std::uint32_t i = 0; i < num_features_; ++i) {
    const float* id = ids_.data() + static_cast<std::size_t>(i) * config_.dim;
    const float* level =
        levels_.data() + static_cast<std::size_t>(level_of(sample[i])) * config_.dim;
    for (std::uint32_t j = 0; j < config_.dim; ++j) {
      encoded[j] += id[j] * level[j];  // binding, then bundling
    }
  }
  return encoded;
}

tensor::MatrixF LevelEncoder::encode_batch(const tensor::MatrixF& samples) const {
  HDC_CHECK(samples.cols() == num_features_, "batch feature count mismatch");
  tensor::MatrixF encoded(samples.rows(), config_.dim);
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    const auto row = encode(samples.row(i));
    std::copy(row.begin(), row.end(), encoded.row(i).begin());
  }
  return encoded;
}

}  // namespace hdc::core
