#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/byte_io.hpp"
#include "core/config.hpp"
#include "core/encoder.hpp"
#include "core/model.hpp"
#include "core/serialize.hpp"
#include "data/dataset.hpp"

namespace hdc::core {

/// Configuration of the adaptive single-pass learner.
struct OnlineConfig {
  std::uint32_t dim = 4096;
  std::uint64_t seed = 42;
  float learning_rate = 1.0F;     ///< base lambda, scaled per sample
  Similarity similarity = Similarity::kCosine;
  /// Capacity of the windowed error-rate ring (last N prequential outcomes).
  std::uint32_t error_window = 256;
};

/// Last-N ring of binary outcomes: the windowed counterpart to a lifetime
/// error rate, which averages over so much history that a concept-drift
/// onset barely moves it. Memory is fixed at `capacity` bytes.
class WindowedRate {
 public:
  explicit WindowedRate(std::uint32_t capacity);

  void add(bool value);
  std::uint64_t count() const noexcept { return filled_; }
  std::uint32_t capacity() const noexcept { return static_cast<std::uint32_t>(ring_.size()); }
  /// Fraction of true outcomes over the last min(count, capacity) samples.
  double rate() const;
  void reset();

  /// Exact-state round-trip (ring contents, fill, head) for checkpoints.
  void serialize(ByteWriter& writer) const;
  static WindowedRate deserialize(ByteReader& reader);

 private:
  std::vector<std::uint8_t> ring_;
  std::uint64_t filled_ = 0;   ///< min(samples added, capacity)
  std::uint64_t sum_ = 0;      ///< true outcomes currently in the ring
  std::size_t head_ = 0;
};

/// Running statistics of an online learning session: lifetime totals plus a
/// windowed error rate that stays responsive to drift.
struct OnlineStats {
  std::uint64_t samples_seen = 0;
  std::uint64_t errors = 0;
  WindowedRate recent;  ///< last-N prequential errors

  explicit OnlineStats(std::uint32_t error_window = 256) : recent(error_window) {}

  double error_rate() const {
    return samples_seen == 0 ? 0.0
                             : static_cast<double>(errors) / static_cast<double>(samples_seen);
  }
  /// Error rate over the last min(samples_seen, error_window) samples.
  double windowed_error_rate() const { return recent.rate(); }

  void serialize(ByteWriter& writer) const;
  static OnlineStats deserialize(ByteReader& reader);
};

/// Adaptive online HDC learner in the style of OnlineHD (cited by the paper
/// as [17]): one pass over streaming samples, with update magnitudes scaled
/// by how badly the model got each sample wrong.
///
/// On a mispredicted sample with true class `a`, predicted `b`:
///
///   C_a += lambda * (1 - delta_a) * E      (pull the true class closer)
///   C_b -= lambda * (1 - delta_b) * E      (push the imposter away)
///
/// where delta_c is the (cosine) similarity to class c. Confidently wrong
/// samples cause big corrections; near-miss samples barely perturb a model
/// that is already close — which is what makes a single pass competitive
/// with iterated training, and keeps the learner stable under concept drift.
class OnlineLearner {
 public:
  OnlineLearner(std::uint32_t num_features, std::uint32_t num_classes, OnlineConfig config);

  const OnlineConfig& config() const noexcept { return config_; }
  const Encoder& encoder() const noexcept { return encoder_; }
  const HdModel& model() const noexcept { return model_; }
  const OnlineStats& stats() const noexcept { return stats_; }

  /// Processes one labeled sample; returns the prediction made *before* the
  /// update (prequential evaluation).
  std::uint32_t learn(std::span<const float> sample, std::uint32_t label);

  /// Processes a labeled batch; returns prequential accuracy over it.
  double learn_batch(const data::Dataset& batch);

  /// Pure prediction, no adaptation.
  std::uint32_t predict(std::span<const float> sample) const;

  /// Prediction plus quality signals (no adaptation): the top-2 scores and
  /// their margin, the confidence signal live monitoring watches for
  /// margin collapse under drift.
  struct Decision {
    std::uint32_t predicted = 0;
    float top1 = 0.0F;
    float top2 = 0.0F;
    double margin() const { return static_cast<double>(top1) - static_cast<double>(top2); }
  };
  Decision decide(std::span<const float> sample) const;

  /// The encoded hypervector `decide`/`learn` score against the class
  /// vectors. Exposed so observability layers (per-dimension
  /// discriminability in obs/model_stats.hpp) can reuse the encoding the
  /// serving path already needs instead of paying a second projection.
  std::vector<float> encode(std::span<const float> sample) const;

  /// `decide` on a pre-encoded hypervector (see `encode`).
  Decision decide_encoded(std::span<const float> encoded) const;

  /// Freezes the current state into a deployable classifier (copy).
  TrainedClassifier freeze() const;

  void reset_stats();

  /// Exact-state round-trip — config, base hypervectors, class hypervectors
  /// and the prequential counters — so a serve checkpoint restores the
  /// learner mid-stream bit-identically.
  void serialize(ByteWriter& writer) const;
  static OnlineLearner deserialize(ByteReader& reader);

 private:
  OnlineLearner(OnlineConfig config, Encoder encoder, HdModel model, OnlineStats stats);

  OnlineConfig config_;
  Encoder encoder_;
  HdModel model_;
  OnlineStats stats_;
};

}  // namespace hdc::core
