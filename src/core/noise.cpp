#include "core/noise.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hdc::core {
namespace {

void for_random_fraction(HdModel& model, double fraction, Rng& rng, auto&& mutate) {
  HDC_CHECK(fraction >= 0.0 && fraction <= 1.0, "corruption fraction must lie in [0,1]");
  const auto dim = model.dim();
  const auto hit_count = static_cast<std::uint32_t>(fraction * dim);
  for (std::uint32_t c = 0; c < model.num_classes(); ++c) {
    auto row = model.class_hypervectors().row(c);
    for (const std::uint32_t j : rng.sample_without_replacement(dim, hit_count)) {
      mutate(row[j]);
    }
  }
}

}  // namespace

float model_rms(const HdModel& model) {
  double acc = 0.0;
  for (const float v : model.class_hypervectors().storage()) {
    acc += static_cast<double>(v) * v;
  }
  return static_cast<float>(
      std::sqrt(acc / static_cast<double>(model.class_hypervectors().size())));
}

void inject_stuck_at_zero(HdModel& model, double fraction, Rng& rng) {
  for_random_fraction(model, fraction, rng, [](float& v) { v = 0.0F; });
}

void inject_gaussian_noise(HdModel& model, float sigma_relative, Rng& rng) {
  HDC_CHECK(sigma_relative >= 0.0F, "noise sigma must be non-negative");
  const float sigma = sigma_relative * model_rms(model);
  for (float& v : model.class_hypervectors().storage()) {
    v += rng.gaussian(0.0F, sigma);
  }
}

void inject_sign_flips(HdModel& model, double fraction, Rng& rng) {
  for_random_fraction(model, fraction, rng, [](float& v) { v = -v; });
}

}  // namespace hdc::core
