#include "core/trainer.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "data/dataset.hpp"

namespace hdc::core {

void HdConfig::validate() const {
  HDC_CHECK(dim > 0, "hypervector width must be positive");
  HDC_CHECK(learning_rate > 0.0F, "learning rate must be positive");
  HDC_CHECK(epochs > 0, "at least one training iteration is required");
}

Trainer::Trainer(HdConfig config) : config_(config) { config_.validate(); }

TrainResult Trainer::fit_encoded(const tensor::MatrixF& encoded,
                                 const std::vector<std::uint32_t>& labels,
                                 std::uint32_t num_classes,
                                 const tensor::MatrixF* val_encoded,
                                 const std::vector<std::uint32_t>* val_labels) const {
  HDC_CHECK(encoded.rows() == labels.size(), "encoded rows and label count disagree");
  HDC_CHECK(encoded.rows() > 0, "cannot train on an empty set");
  HDC_CHECK((val_encoded == nullptr) == (val_labels == nullptr),
            "validation encodings and labels must be given together");
  if (val_encoded != nullptr) {
    HDC_CHECK(val_encoded->rows() == val_labels->size(),
              "validation rows and label count disagree");
    HDC_CHECK(val_encoded->cols() == encoded.cols(), "validation width mismatch");
  }

  // The update loop itself is inherently sequential (each sample's
  // prediction depends on the updates before it); the pool only accelerates
  // the per-epoch validation scoring below.
  const parallel::ScopedThreadCount thread_scope(config_.threads);

  TrainResult result{HdModel(num_classes, static_cast<std::uint32_t>(encoded.cols())), {}, 0};
  HdModel& model = result.model;

  for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    EpochStats stats;
    stats.epoch = epoch;

    std::size_t correct = 0;
    for (std::size_t i = 0; i < encoded.rows(); ++i) {
      const auto hv = encoded.row(i);
      const std::uint32_t predicted = model.predict(hv, config_.similarity);
      const std::uint32_t truth = labels[i];
      if (predicted == truth) {
        ++correct;
        continue;
      }
      model.bundle(truth, hv, config_.learning_rate);
      model.detach(predicted, hv, config_.learning_rate);
      ++stats.updates;
    }
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(encoded.rows());

    if (val_encoded != nullptr) {
      const auto predictions = model.predict_batch(*val_encoded, config_.similarity);
      stats.val_accuracy = data::accuracy(predictions, *val_labels);
    }

    result.total_updates += stats.updates;
    result.history.push_back(stats);
  }
  return result;
}

TrainResult Trainer::fit(const Encoder& encoder, const data::Dataset& train,
                         const data::Dataset* validation) const {
  HDC_CHECK(encoder.dim() == config_.dim, "encoder width disagrees with trainer config");
  const parallel::ScopedThreadCount thread_scope(config_.threads);
  const tensor::MatrixF encoded = encoder.encode_batch(train.features);
  if (validation == nullptr) {
    return fit_encoded(encoded, train.labels, train.num_classes);
  }
  const tensor::MatrixF val_encoded = encoder.encode_batch(validation->features);
  return fit_encoded(encoded, train.labels, train.num_classes, &val_encoded,
                     &validation->labels);
}

}  // namespace hdc::core
