#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/encoder.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/sampling.hpp"

namespace hdc::core {

/// Bagging configuration (paper Section III-B). Defaults are the paper's
/// chosen operating point: M = 4 sub-models of width d' = d/M = 2500,
/// 6 iterations, dataset sampling alpha = 0.6, feature sampling disabled.
struct BaggingConfig {
  std::uint32_t num_models = 4;     ///< M
  std::uint32_t sub_dim = 0;        ///< d'; 0 means dim / num_models
  std::uint32_t epochs = 6;         ///< I' (reduced iterations)
  data::BootstrapConfig bootstrap;  ///< alpha / beta sampling ratios
  HdConfig base;                    ///< full-model dim, seed, lambda, metric

  std::uint32_t effective_sub_dim() const;
  void validate() const;
};

/// One bagged learner: its own random bases (with masked features zeroed),
/// its trained class hypervectors and the bootstrap that produced it.
struct SubModel {
  Encoder encoder;
  HdModel model;
  data::BootstrapSample bootstrap;
};

/// The trained ensemble plus per-member training history.
struct BaggedEnsemble {
  std::vector<SubModel> members;
  std::vector<TrainingRecord> training;  ///< per-epoch stats per member

  std::uint32_t num_classes() const;
  std::uint32_t full_dim() const;  ///< sum of member widths

  /// Consensus prediction: per-class dot-product scores summed over members.
  std::uint32_t predict(std::span<const float> sample) const;
  std::vector<std::uint32_t> predict_batch(const tensor::MatrixF& samples) const;
};

/// Single full-width inference model assembled from an ensemble by stacking
/// member base matrices horizontally (n x d) and member class-hypervector
/// blocks along the hypervector axis (d x k when transposed). By
/// construction the stacked model's dot scores equal the sum of the member
/// scores, so consensus inference costs exactly one wide model evaluation.
struct StackedModel {
  Encoder encoder;  ///< n x d stacked bases
  HdModel model;    ///< k x d stacked class hypervectors

  std::uint32_t predict(std::span<const float> sample) const;
  std::vector<std::uint32_t> predict_batch(const tensor::MatrixF& samples) const;
};

StackedModel stack(const BaggedEnsemble& ensemble);

/// Trains M sub-models on bootstrap subsets (paper Fig. 3 training flow).
class BaggingTrainer {
 public:
  explicit BaggingTrainer(BaggingConfig config);

  const BaggingConfig& config() const noexcept { return config_; }

  BaggedEnsemble fit(const data::Dataset& train) const;

 private:
  BaggingConfig config_;
};

}  // namespace hdc::core
