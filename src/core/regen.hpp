#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/serialize.hpp"
#include "data/dataset.hpp"

namespace hdc::core {

/// Dimension-regeneration training (the NeuralHD/"neural adaptation" recipe
/// from the paper's related edge-HDC work, e.g. reference [18]): after each
/// training round, the least-discriminative hypervector dimensions — those
/// whose class-hypervector values barely vary across classes — are
/// re-randomized and retrained. The model keeps its width d but steadily
/// replaces wasted dimensions with useful ones, buying accuracy that would
/// otherwise require a wider model.
struct RegenConfig {
  std::uint32_t rounds = 4;            ///< regenerate/retrain cycles
  double regenerate_fraction = 0.10;   ///< fraction of dimensions recycled per round
  std::uint32_t epochs_per_round = 5;  ///< training iterations per cycle

  void validate() const;
};

struct RegenResult {
  TrainedClassifier classifier;
  /// Validation (or training, if no validation set) accuracy after each
  /// round; entry 0 is the pre-regeneration baseline.
  std::vector<double> round_accuracy;
  std::uint32_t regenerated_dimensions = 0;
};

/// Per-dimension discriminative score: the variance of the (row-normalized)
/// class-hypervector values across classes. Exposed for tests.
std::vector<float> dimension_scores(const HdModel& model);

/// Trains with `config.rounds` regeneration cycles on top of the standard
/// iterative trainer.
RegenResult train_with_regeneration(const data::Dataset& train, const HdConfig& hd_config,
                                    const RegenConfig& regen_config,
                                    const data::Dataset* validation = nullptr);

}  // namespace hdc::core
