#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/serialize.hpp"
#include "data/dataset.hpp"

namespace hdc::core {

/// Bipolar (binary) deployment of a trained HDC classifier — the classic
/// memory-light HDC operating point the paper's related work targets on
/// ASIC/FPGA substrates: class hypervectors are reduced to their signs and
/// packed 64 components per word; queries binarize their encodings the same
/// way and the associative search becomes XOR + popcount (Hamming distance).
///
/// The random base matrix stays float (encoding is still E = tanh(F . B));
/// the win is the model memory (32x smaller class store) and the similarity
/// arithmetic (bitwise instead of MACs). Accuracy typically lands a few
/// points below the float/int8 models — quantified by ablation_precision.
class BinaryClassifier {
 public:
  /// Sign-binarizes an existing trained classifier as-is ("zero-shot").
  /// Cheap but lossy: float-trained class hypervectors are not optimized for
  /// the bipolar domain, so expect an accuracy drop on low-feature tasks.
  static BinaryClassifier binarize(const TrainedClassifier& classifier);

  /// Binarizes with a short retraining pass in the bipolar domain: training
  /// samples are encoded, sign-binarized, and the class hypervectors are
  /// re-fit on those +/-1 vectors before their own signs are taken. This is
  /// the standard recipe for deploying binary HDC and typically lands within
  /// a point of the float model (see BinaryClassifierTest).
  static BinaryClassifier binarize_retrained(const TrainedClassifier& classifier,
                                             const data::Dataset& train,
                                             std::uint32_t epochs = 6);

  std::uint32_t dim() const noexcept { return dim_; }
  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(class_words_.size());
  }
  std::uint32_t words_per_vector() const noexcept { return words_; }

  /// Packed class-hypervector store size (the deployable model memory).
  std::size_t model_bytes() const noexcept {
    return static_cast<std::size_t>(num_classes()) * words_ * sizeof(std::uint64_t);
  }
  /// Equivalent float class store, for the compression-ratio headline.
  std::size_t dense_model_bytes() const noexcept {
    return static_cast<std::size_t>(num_classes()) * dim_ * sizeof(float);
  }

  /// Packs a (float) encoded hypervector to bits: component i maps to 1 when
  /// it is >= its threshold (zero for zero-shot binarization; the per-
  /// component training-set mean after retraining, which matters when
  /// all-positive inputs give the raw encodings a large common offset).
  std::vector<std::uint64_t> pack(std::span<const float> encoded) const;

  /// Hamming distance between a packed query and class `c`.
  std::uint32_t hamming(std::span<const std::uint64_t> packed, std::uint32_t c) const;

  /// Full pipeline: encode with the float base, binarize, nearest class by
  /// Hamming distance.
  std::uint32_t predict(std::span<const float> sample) const;
  std::vector<std::uint32_t> predict_batch(const tensor::MatrixF& samples) const;

 private:
  BinaryClassifier(Encoder encoder, std::uint32_t dim);

  Encoder encoder_;
  std::uint32_t dim_;
  std::uint32_t words_;
  std::vector<std::vector<std::uint64_t>> class_words_;
  std::vector<float> thresholds_;  ///< empty = binarize around zero
};

}  // namespace hdc::core
