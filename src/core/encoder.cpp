#include "core/encoder.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

Encoder::Encoder(std::uint32_t num_features, std::uint32_t dim, std::uint64_t seed)
    : base_(num_features, dim) {
  HDC_CHECK(num_features > 0, "encoder requires at least one feature");
  HDC_CHECK(dim > 0, "encoder requires a positive hypervector width");
  Rng rng(seed);
  rng.fill_gaussian(base_.data(), base_.size());
}

Encoder::Encoder(tensor::MatrixF base) : base_(std::move(base)) {
  HDC_CHECK(base_.rows() > 0 && base_.cols() > 0, "encoder base matrix must be non-empty");
}

void Encoder::apply_feature_mask(std::span<const std::uint8_t> mask) {
  HDC_CHECK(mask.size() == base_.rows(), "feature mask length mismatch");
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0) {
      auto row = base_.row(i);
      std::fill(row.begin(), row.end(), 0.0F);
    }
  }
}

std::vector<float> Encoder::encode(std::span<const float> sample) const {
  HDC_CHECK(sample.size() == base_.rows(), "sample feature count mismatch");
  std::vector<float> encoded(base_.cols());
  tensor::vecmat(sample, base_, encoded);
  tensor::tanh_inplace(encoded);
  return encoded;
}

tensor::MatrixF Encoder::encode_batch(const tensor::MatrixF& samples) const {
  HDC_CHECK(samples.cols() == base_.rows(), "batch feature count mismatch");
  // Row-parallel with tanh fused per block; bit-identical to the serial
  // matmul + tanh pass for any thread count.
  return tensor::matmul_tanh(samples, base_);
}

}  // namespace hdc::core
