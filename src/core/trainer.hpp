#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/encoder.hpp"
#include "core/model.hpp"
#include "data/dataset.hpp"
#include "tensor/matrix.hpp"

namespace hdc::core {

/// Accuracy / update bookkeeping for one training iteration. `updates` is the
/// number of mispredicted samples (each costs one bundling + one detaching),
/// which the platform cost models use to price the CPU-resident update phase.
struct EpochStats {
  std::uint32_t epoch = 0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;  ///< NaN-free: 0 when no validation set given
  std::uint64_t updates = 0;
};

struct TrainResult {
  HdModel model;
  std::vector<EpochStats> history;
  std::uint64_t total_updates = 0;
};

/// Model-free training history. The bagging trainer records one per member:
/// the trained model itself moves into the ensemble, so the record keeps
/// only the per-epoch stats (no placeholder model to mistake for a real one).
struct TrainingRecord {
  std::vector<EpochStats> history;
  std::uint64_t total_updates = 0;
};

/// Iterative HDC trainer (paper Section III-A): class hypervectors start at
/// zero; every mispredicted sample bundles into its true class and detaches
/// from the predicted class, scaled by the learning rate.
///
/// The trainer consumes *already encoded* hypervectors — mirroring the
/// paper's co-design split where encoding runs on the accelerator once and
/// the update loop iterates on the host CPU over the cached encodings.
class Trainer {
 public:
  explicit Trainer(HdConfig config);

  const HdConfig& config() const noexcept { return config_; }

  /// Trains on encoded rows; optionally tracks validation accuracy per epoch
  /// (used by the Fig-4 convergence experiment).
  TrainResult fit_encoded(const tensor::MatrixF& encoded,
                          const std::vector<std::uint32_t>& labels,
                          std::uint32_t num_classes,
                          const tensor::MatrixF* val_encoded = nullptr,
                          const std::vector<std::uint32_t>* val_labels = nullptr) const;

  /// Convenience wrapper: encode with `encoder`, then fit.
  TrainResult fit(const Encoder& encoder, const data::Dataset& train,
                  const data::Dataset* validation = nullptr) const;

 private:
  HdConfig config_;
};

}  // namespace hdc::core
