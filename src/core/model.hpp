#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "tensor/matrix.hpp"

namespace hdc::core {

/// The trained HDC state: k class hypervectors of width d (row per class).
/// Classification is an associative search — the class whose hypervector is
/// most similar to the encoded query wins.
class HdModel {
 public:
  HdModel(std::uint32_t num_classes, std::uint32_t dim);

  /// Wraps an existing class-hypervector matrix (row per class).
  explicit HdModel(tensor::MatrixF class_hypervectors);

  std::uint32_t num_classes() const noexcept {
    return static_cast<std::uint32_t>(class_hvs_.rows());
  }
  std::uint32_t dim() const noexcept { return static_cast<std::uint32_t>(class_hvs_.cols()); }
  const tensor::MatrixF& class_hypervectors() const noexcept { return class_hvs_; }
  tensor::MatrixF& class_hypervectors() noexcept { return class_hvs_; }

  /// Per-class similarity scores for one encoded hypervector.
  std::vector<float> scores(std::span<const float> encoded, Similarity metric) const;

  /// argmax over scores.
  std::uint32_t predict(std::span<const float> encoded, Similarity metric) const;

  /// One prediction per row of `encoded`.
  std::vector<std::uint32_t> predict_batch(const tensor::MatrixF& encoded,
                                           Similarity metric) const;

  /// Bundling: C_class += lambda * E  (paper eq. in Section III-A).
  void bundle(std::uint32_t class_index, std::span<const float> encoded, float lambda);

  /// Detaching: C_class -= lambda * E.
  void detach(std::uint32_t class_index, std::span<const float> encoded, float lambda);

 private:
  tensor::MatrixF class_hvs_;  ///< num_classes x dim
};

}  // namespace hdc::core
