#include "core/federated.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hdc::core {

std::vector<data::Dataset> partition_dataset(const data::Dataset& dataset,
                                             std::uint32_t num_shards,
                                             std::uint64_t seed) {
  dataset.validate();
  HDC_CHECK(num_shards > 0, "need at least one shard");
  HDC_CHECK(dataset.num_samples() >= num_shards, "fewer samples than shards");

  std::vector<std::uint32_t> order(dataset.num_samples());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  std::vector<data::Dataset> shards;
  shards.reserve(num_shards);
  const std::size_t base_size = order.size() / num_shards;
  std::size_t cursor = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    // The last shard absorbs the remainder.
    const std::size_t size =
        s + 1 == num_shards ? order.size() - cursor : base_size;
    std::vector<std::uint32_t> indices(order.begin() + cursor,
                                       order.begin() + cursor + size);
    cursor += size;
    shards.push_back(dataset.select(indices));
    shards.back().name = dataset.name + "@shard" + std::to_string(s);
  }
  return shards;
}

HdModel merge_models(std::span<const HdModel> models) {
  HDC_CHECK(!models.empty(), "cannot merge zero models");
  const std::uint32_t classes = models.front().num_classes();
  const std::uint32_t dim = models.front().dim();
  HdModel merged(classes, dim);
  for (const auto& model : models) {
    HDC_CHECK(model.num_classes() == classes && model.dim() == dim,
              "federated models disagree on shape");
    for (std::uint32_t c = 0; c < classes; ++c) {
      merged.bundle(c, model.class_hypervectors().row(c), 1.0F);
    }
  }
  return merged;
}

FederatedResult federated_train(const data::Dataset& dataset, std::uint32_t num_devices,
                                const HdConfig& config) {
  config.validate();
  const auto shards = partition_dataset(dataset, num_devices, config.seed ^ 0xFEDF);

  // Shared geometry: every device regenerates the identical base matrix from
  // the common seed — only class hypervectors travel.
  Encoder shared_encoder(static_cast<std::uint32_t>(dataset.num_features()), config.dim,
                         config.seed);

  std::vector<HdModel> local_models;
  std::vector<double> local_accuracy;
  local_models.reserve(num_devices);
  const Trainer trainer(config);
  for (const auto& shard : shards) {
    TrainResult result = trainer.fit(shared_encoder, shard);
    local_accuracy.push_back(result.history.back().train_accuracy);
    local_models.push_back(std::move(result.model));
  }

  return FederatedResult{
      TrainedClassifier{std::move(shared_encoder), merge_models(local_models)},
      std::move(local_accuracy)};
}

}  // namespace hdc::core
