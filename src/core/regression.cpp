#include "core/regression.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

void RegressionConfig::validate() const {
  HDC_CHECK(dim > 0, "hypervector width must be positive");
  HDC_CHECK(epochs > 0, "at least one epoch required");
  HDC_CHECK(learning_rate > 0.0F, "learning rate must be positive");
}

HdRegressor::HdRegressor(std::uint32_t num_features, RegressionConfig config)
    : config_(config), encoder_(num_features, config.dim, config.seed) {
  config_.validate();
}

float HdRegressor::predict(std::span<const float> sample,
                           std::span<const float> model) const {
  HDC_CHECK(model.size() == config_.dim, "model width disagrees with config");
  const auto encoded = encoder_.encode(sample);
  return tensor::dot(encoded, model);
}

RegressionResult HdRegressor::fit(const tensor::MatrixF& samples,
                                  std::span<const float> targets) {
  HDC_CHECK(samples.rows() == targets.size(), "sample/target count mismatch");
  HDC_CHECK(samples.rows() > 0, "cannot fit on an empty set");

  const tensor::MatrixF encoded = encoder_.encode_batch(samples);
  const std::size_t n = encoded.rows();

  // Normalized LMS: dividing each step by the encoding's own energy makes
  // the per-sample correction a fixed fraction (the learning rate) of the
  // current error regardless of d — fast, width-independent convergence.
  std::vector<float> inv_energy(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto hv = encoded.row(i);
    const float energy = tensor::dot(hv, hv);
    inv_energy[i] = energy > 0.0F ? 1.0F / energy : 0.0F;
  }

  RegressionResult result;
  result.model.assign(config_.dim, 0.0F);

  for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double squared_error = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto hv = encoded.row(i);
      const float prediction = tensor::dot(hv, result.model);
      const float error = targets[i] - prediction;
      squared_error += static_cast<double>(error) * error;
      tensor::axpy(config_.learning_rate * error * inv_energy[i], hv, result.model);
    }
    result.epoch_rmse.push_back(std::sqrt(squared_error / static_cast<double>(n)));
  }
  return result;
}

}  // namespace hdc::core
