#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/serialize.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"

namespace hdc::core {

/// Federated HDC (the collaborative-learning setting of the paper's
/// reference [21]): every edge device derives the *same* base hypervectors
/// from a shared seed, trains class hypervectors on its local shard, and the
/// aggregator merges the models by bundling — class hypervectors add, no
/// gradients or raw data ever leave a device.

/// Splits a dataset into `num_shards` disjoint, shuffled shards (one per
/// simulated device).
std::vector<data::Dataset> partition_dataset(const data::Dataset& dataset,
                                             std::uint32_t num_shards, std::uint64_t seed);

/// Bundles per-device class-hypervector models into one global model. All
/// models must agree on (classes, dim) — and, for the result to be
/// meaningful, on the encoder seed.
HdModel merge_models(std::span<const HdModel> models);

struct FederatedResult {
  TrainedClassifier global;            ///< shared encoder + merged model
  std::vector<double> device_accuracy; ///< final local train accuracy per device
};

/// Convenience driver: partition, train each shard locally with `config`,
/// merge. Every device uses the encoder derived from `config.seed`.
FederatedResult federated_train(const data::Dataset& dataset, std::uint32_t num_devices,
                                const HdConfig& config);

}  // namespace hdc::core
