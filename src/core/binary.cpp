#include "core/binary.hpp"

#include <bit>

#include "common/error.hpp"
#include "core/trainer.hpp"

namespace hdc::core {

BinaryClassifier::BinaryClassifier(Encoder encoder, std::uint32_t dim)
    : encoder_(std::move(encoder)), dim_(dim), words_((dim + 63) / 64) {}

BinaryClassifier BinaryClassifier::binarize(const TrainedClassifier& classifier) {
  HDC_CHECK(classifier.encoder.dim() == classifier.model.dim(),
            "encoder and model widths disagree");
  BinaryClassifier out(Encoder(classifier.encoder.base()), classifier.dim());
  out.class_words_.reserve(classifier.num_classes());
  for (std::size_t c = 0; c < classifier.num_classes(); ++c) {
    out.class_words_.push_back(out.pack(classifier.model.class_hypervectors().row(c)));
  }
  return out;
}

BinaryClassifier BinaryClassifier::binarize_retrained(const TrainedClassifier& classifier,
                                                      const data::Dataset& train,
                                                      std::uint32_t epochs) {
  train.validate();
  HDC_CHECK(train.num_features() == classifier.encoder.num_features(),
            "retraining dataset feature count disagrees with the classifier");
  HDC_CHECK(epochs > 0, "retraining needs at least one epoch");

  // Encode, then binarize around the per-component mean — min-max-normalized
  // (all-positive) inputs give raw encodings a large shared offset that a
  // plain sign() would collapse onto.
  tensor::MatrixF encoded = classifier.encoder.encode_batch(train.features);
  std::vector<float> thresholds(encoded.cols(), 0.0F);
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    const auto row = encoded.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      thresholds[j] += row[j];
    }
  }
  for (float& t : thresholds) {
    t /= static_cast<float>(encoded.rows());
  }
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    auto row = encoded.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = row[j] >= thresholds[j] ? 1.0F : -1.0F;
    }
  }

  HdConfig config;
  config.dim = classifier.dim();
  config.epochs = epochs;
  const Trainer trainer(config);
  TrainResult refit = trainer.fit_encoded(encoded, train.labels, train.num_classes);

  BinaryClassifier out(Encoder(classifier.encoder.base()), classifier.dim());
  // Class hypervectors were trained on centered (+/-1) encodings, so they
  // binarize around zero; only *queries* need the thresholds.
  out.class_words_.reserve(refit.model.num_classes());
  for (std::size_t c = 0; c < refit.model.num_classes(); ++c) {
    out.class_words_.push_back(out.pack(refit.model.class_hypervectors().row(c)));
  }
  out.thresholds_ = std::move(thresholds);
  return out;
}

std::vector<std::uint64_t> BinaryClassifier::pack(std::span<const float> encoded) const {
  HDC_CHECK(encoded.size() == dim_, "encoded width disagrees with binary model");
  std::vector<std::uint64_t> words(words_, 0);
  for (std::uint32_t i = 0; i < dim_; ++i) {
    // Ties at exactly the threshold are rare for real encodings and
    // deterministic either way.
    const float threshold = thresholds_.empty() ? 0.0F : thresholds_[i];
    if (encoded[i] >= threshold) {
      words[i >> 6] |= (1ULL << (i & 63));
    }
  }
  return words;
}

std::uint32_t BinaryClassifier::hamming(std::span<const std::uint64_t> packed,
                                        std::uint32_t c) const {
  HDC_CHECK(packed.size() == words_, "packed query has the wrong word count");
  HDC_CHECK(c < class_words_.size(), "class index out of range");
  const auto& cls = class_words_[c];
  std::uint32_t distance = 0;
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t diff = packed[w] ^ cls[w];
    if (w + 1 == words_ && (dim_ & 63) != 0) {
      diff &= (1ULL << (dim_ & 63)) - 1;  // mask padding bits of the last word
    }
    distance += static_cast<std::uint32_t>(std::popcount(diff));
  }
  return distance;
}

std::uint32_t BinaryClassifier::predict(std::span<const float> sample) const {
  const auto packed = pack(encoder_.encode(sample));
  std::uint32_t best_class = 0;
  std::uint32_t best_distance = UINT32_MAX;
  for (std::uint32_t c = 0; c < class_words_.size(); ++c) {
    const std::uint32_t distance = hamming(packed, c);
    if (distance < best_distance) {
      best_distance = distance;
      best_class = c;
    }
  }
  return best_class;
}

std::vector<std::uint32_t> BinaryClassifier::predict_batch(
    const tensor::MatrixF& samples) const {
  std::vector<std::uint32_t> out(samples.rows());
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    out[i] = predict(samples.row(i));
  }
  return out;
}

}  // namespace hdc::core
