#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/model.hpp"

namespace hdc::core {

/// A trained classifier bundle: the encoder (base hypervectors) plus the
/// class hypervectors. This is everything needed to rebuild the wide-NN
/// inference model, so it is the unit of persistence.
struct TrainedClassifier {
  Encoder encoder;
  HdModel model;

  std::uint32_t num_features() const { return encoder.num_features(); }
  std::uint32_t dim() const { return encoder.dim(); }
  std::uint32_t num_classes() const { return model.num_classes(); }
};

/// Binary serialization ("HDCM" magic, version, CRC32 trailer). Round-trips
/// bit-exactly; loads reject wrong magic, unsupported versions, truncated
/// buffers and checksum mismatches with hdc::Error.
std::vector<std::uint8_t> serialize_classifier(const TrainedClassifier& classifier);
TrainedClassifier deserialize_classifier(std::span<const std::uint8_t> bytes);

void save_classifier(const TrainedClassifier& classifier, const std::string& path);
TrainedClassifier load_classifier(const std::string& path);

}  // namespace hdc::core
