#pragma once

#include <cstdint>

namespace hdc::core {

/// Similarity metric for the associative search. Training defaults to cosine
/// (robust to class-hypervector norm drift); the generated inference model
/// uses the paper's dot-product approximation so it maps to one dense layer.
enum class Similarity { kDot, kCosine };

/// Hyperparameters of a single (non-bagged) HDC learner.
struct HdConfig {
  std::uint32_t dim = 10000;        ///< hypervector width d
  std::uint64_t seed = 42;          ///< base-hypervector generator seed
  float learning_rate = 1.0F;       ///< lambda in the bundling/detaching update
  std::uint32_t epochs = 20;        ///< training iterations (paper: 20 for full models)
  Similarity similarity = Similarity::kCosine;
  /// Host worker threads for encode / batch scoring / bagging members while
  /// this config trains (0 = keep the process-wide `parallel` setting).
  /// Results are bit-identical for any value; this is purely a speed knob.
  std::uint32_t threads = 0;

  void validate() const;
};

}  // namespace hdc::core
