#include "core/regen.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

void RegenConfig::validate() const {
  HDC_CHECK(rounds > 0, "regeneration needs at least one round");
  HDC_CHECK(regenerate_fraction > 0.0 && regenerate_fraction < 1.0,
            "regeneration fraction must lie in (0,1)");
  HDC_CHECK(epochs_per_round > 0, "each round needs at least one epoch");
}

std::vector<float> dimension_scores(const HdModel& model) {
  const auto& class_hvs = model.class_hypervectors();
  const std::uint32_t k = model.num_classes();
  const std::uint32_t d = model.dim();

  // Row-normalize so one dominant class's magnitude cannot mask dimensions
  // that are useless for separating the others.
  std::vector<float> inv_norms(k, 0.0F);
  for (std::uint32_t c = 0; c < k; ++c) {
    const float norm = tensor::l2_norm(class_hvs.row(c));
    inv_norms[c] = norm > 0.0F ? 1.0F / norm : 0.0F;
  }

  std::vector<float> scores(d, 0.0F);
  for (std::uint32_t j = 0; j < d; ++j) {
    float mean = 0.0F;
    for (std::uint32_t c = 0; c < k; ++c) {
      mean += class_hvs(c, j) * inv_norms[c];
    }
    mean /= static_cast<float>(k);
    float variance = 0.0F;
    for (std::uint32_t c = 0; c < k; ++c) {
      const float v = class_hvs(c, j) * inv_norms[c] - mean;
      variance += v * v;
    }
    scores[j] = variance / static_cast<float>(k);
  }
  return scores;
}

RegenResult train_with_regeneration(const data::Dataset& train, const HdConfig& hd_config,
                                    const RegenConfig& regen_config,
                                    const data::Dataset* validation) {
  train.validate();
  hd_config.validate();
  regen_config.validate();

  Encoder encoder(static_cast<std::uint32_t>(train.num_features()), hd_config.dim,
                  hd_config.seed);
  Rng regen_rng(hd_config.seed ^ 0x9E6EU);

  const auto evaluate = [&](const HdModel& model) {
    const data::Dataset& probe = validation != nullptr ? *validation : train;
    const auto predictions =
        model.predict_batch(encoder.encode_batch(probe.features), hd_config.similarity);
    return data::accuracy(predictions, probe.labels);
  };

  HdConfig round_config = hd_config;
  round_config.epochs = regen_config.epochs_per_round;
  const Trainer trainer(round_config);

  RegenResult result{
      TrainedClassifier{Encoder(encoder.base()), HdModel(train.num_classes, hd_config.dim)},
      {},
      0};

  // Baseline round.
  TrainResult trained = trainer.fit(encoder, train);
  result.round_accuracy.push_back(evaluate(trained.model));

  const auto regen_count = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(regen_config.regenerate_fraction * hd_config.dim));

  for (std::uint32_t round = 0; round < regen_config.rounds; ++round) {
    // Pick the weakest dimensions by discriminative score.
    const std::vector<float> scores = dimension_scores(trained.model);
    std::vector<std::uint32_t> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + regen_count, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) { return scores[a] < scores[b]; });

    // Re-randomize their base columns; class values in those dimensions are
    // stale and get retrained from the refreshed encodings. (Keeping the
    // rest of the class store warm-starts the retraining.)
    tensor::MatrixF base = encoder.base();
    tensor::MatrixF class_hvs = trained.model.class_hypervectors();
    for (std::uint32_t i = 0; i < regen_count; ++i) {
      const std::uint32_t j = order[i];
      for (std::size_t f = 0; f < base.rows(); ++f) {
        base(f, j) = regen_rng.gaussian();
      }
      for (std::uint32_t c = 0; c < train.num_classes; ++c) {
        class_hvs(c, j) = 0.0F;
      }
    }
    encoder = Encoder(std::move(base));
    result.regenerated_dimensions += regen_count;

    // Retrain on the refreshed encodings, warm-starting from the carried
    // class hypervectors.
    const tensor::MatrixF encoded = encoder.encode_batch(train.features);
    HdModel model(std::move(class_hvs));
    for (std::uint32_t epoch = 0; epoch < regen_config.epochs_per_round; ++epoch) {
      for (std::size_t i = 0; i < encoded.rows(); ++i) {
        const auto hv = encoded.row(i);
        const std::uint32_t predicted = model.predict(hv, hd_config.similarity);
        if (predicted == train.labels[i]) {
          continue;
        }
        model.bundle(train.labels[i], hv, hd_config.learning_rate);
        model.detach(predicted, hv, hd_config.learning_rate);
      }
    }
    trained.model = std::move(model);
    result.round_accuracy.push_back(evaluate(trained.model));
  }

  result.classifier =
      TrainedClassifier{Encoder(encoder.base()), std::move(trained.model)};
  return result;
}

}  // namespace hdc::core
