#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace hdc::core {

/// Non-linear hyperdimensional encoder (paper Section III-A):
///
///     E = tanh(f_1 * B_1 + f_2 * B_2 + ... + f_n * B_n) = tanh(F . B)
///
/// where each base hypervector B_i is drawn i.i.d. from N(0, 1) so any two
/// bases are near-orthogonal. The bases form an n x d matrix (row i = B_i),
/// which is exactly the first dense layer of the wide-NN interpretation.
class Encoder {
 public:
  /// Fresh random bases for `num_features` inputs at width `dim`.
  Encoder(std::uint32_t num_features, std::uint32_t dim, std::uint64_t seed);

  /// Wraps an existing base matrix (row per feature). Used when stacking
  /// bagged sub-model bases into one full-width encoder.
  explicit Encoder(tensor::MatrixF base);

  std::uint32_t num_features() const noexcept { return static_cast<std::uint32_t>(base_.rows()); }
  std::uint32_t dim() const noexcept { return static_cast<std::uint32_t>(base_.cols()); }
  const tensor::MatrixF& base() const noexcept { return base_; }

  /// Zeroes base rows whose mask entry is 0, implementing the paper's
  /// feature sampling "for this matrix ... some of the columns are set to
  /// zero, because they correspond to features that are not sampled".
  void apply_feature_mask(std::span<const std::uint8_t> mask);

  /// Encodes one sample (length num_features) to a d-wide hypervector.
  std::vector<float> encode(std::span<const float> sample) const;

  /// Encodes a batch (rows = samples) to rows of hypervectors.
  tensor::MatrixF encode_batch(const tensor::MatrixF& samples) const;

 private:
  tensor::MatrixF base_;  ///< num_features x dim
};

}  // namespace hdc::core
