#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/model.hpp"

namespace hdc::core {

/// Fault-injection utilities backing the paper's robustness motivation
/// ("the human brain can train effortlessly ... without much concern of
/// noisy and broken neuron cells"; HDC "provide[s] strong robustness to
/// noise"). Because information in a hypervector is spread holographically
/// across all d components, a classifier should degrade gracefully — not
/// catastrophically — when components are corrupted. ablation_noise
/// quantifies this.

/// Zeroes a random `fraction` of each class hypervector's components
/// (stuck-at-zero faults: dead SRAM cells, dropped packets).
void inject_stuck_at_zero(HdModel& model, double fraction, Rng& rng);

/// Adds Gaussian noise with standard deviation `sigma_relative` times each
/// class hypervector's RMS component magnitude (analog noise, voltage
/// scaling, low-precision drift).
void inject_gaussian_noise(HdModel& model, float sigma_relative, Rng& rng);

/// Flips the sign of a random `fraction` of components (bit flips in a
/// sign-magnitude store — the harshest corruption).
void inject_sign_flips(HdModel& model, double fraction, Rng& rng);

/// RMS component magnitude over the whole class store (helper; exposed for
/// tests).
float model_rms(const HdModel& model);

}  // namespace hdc::core
