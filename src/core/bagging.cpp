#include "core/bagging.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

std::uint32_t BaggingConfig::effective_sub_dim() const {
  if (sub_dim != 0) {
    return sub_dim;
  }
  HDC_CHECK(num_models > 0, "bagging requires at least one sub-model");
  return std::max<std::uint32_t>(1, base.dim / num_models);
}

void BaggingConfig::validate() const {
  HDC_CHECK(num_models > 0, "bagging requires at least one sub-model");
  HDC_CHECK(epochs > 0, "bagging requires at least one training iteration");
  bootstrap.validate();
  base.validate();
}

std::uint32_t BaggedEnsemble::num_classes() const {
  HDC_CHECK(!members.empty(), "empty ensemble");
  return members.front().model.num_classes();
}

std::uint32_t BaggedEnsemble::full_dim() const {
  std::uint32_t total = 0;
  for (const auto& member : members) {
    total += member.encoder.dim();
  }
  return total;
}

std::uint32_t BaggedEnsemble::predict(std::span<const float> sample) const {
  HDC_CHECK(!members.empty(), "empty ensemble");
  std::vector<float> totals(num_classes(), 0.0F);
  for (const auto& member : members) {
    const auto encoded = member.encoder.encode(sample);
    const auto member_scores = member.model.scores(encoded, Similarity::kDot);
    for (std::size_t c = 0; c < totals.size(); ++c) {
      totals[c] += member_scores[c];
    }
  }
  return static_cast<std::uint32_t>(tensor::argmax(totals));
}

std::vector<std::uint32_t> BaggedEnsemble::predict_batch(const tensor::MatrixF& samples) const {
  std::vector<std::uint32_t> out(samples.rows());
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    out[i] = predict(samples.row(i));
  }
  return out;
}

std::uint32_t StackedModel::predict(std::span<const float> sample) const {
  const auto encoded = encoder.encode(sample);
  return model.predict(encoded, Similarity::kDot);
}

std::vector<std::uint32_t> StackedModel::predict_batch(const tensor::MatrixF& samples) const {
  const tensor::MatrixF encoded = encoder.encode_batch(samples);
  return model.predict_batch(encoded, Similarity::kDot);
}

StackedModel stack(const BaggedEnsemble& ensemble) {
  HDC_CHECK(!ensemble.members.empty(), "cannot stack an empty ensemble");

  std::vector<tensor::MatrixF> bases;
  std::vector<tensor::MatrixF> class_blocks;
  bases.reserve(ensemble.members.size());
  class_blocks.reserve(ensemble.members.size());
  for (const auto& member : ensemble.members) {
    bases.push_back(member.encoder.base());
    // Class blocks concatenate along the hypervector axis, i.e. columns of
    // the k x d class matrix.
    class_blocks.push_back(member.model.class_hypervectors());
  }

  return StackedModel{Encoder(tensor::hstack(bases)),
                      HdModel(tensor::hstack(class_blocks))};
}

BaggingTrainer::BaggingTrainer(BaggingConfig config) : config_(std::move(config)) {
  config_.validate();
}

BaggedEnsemble BaggingTrainer::fit(const data::Dataset& train) const {
  train.validate();
  const std::uint32_t sub_dim = config_.effective_sub_dim();
  const auto num_samples = static_cast<std::uint32_t>(train.num_samples());
  const auto num_features = static_cast<std::uint32_t>(train.num_features());

  Rng rng(config_.base.seed);
  BaggedEnsemble ensemble;
  ensemble.members.reserve(config_.num_models);

  HdConfig sub_config = config_.base;
  sub_config.dim = sub_dim;
  sub_config.epochs = config_.epochs;

  for (std::uint32_t m = 0; m < config_.num_models; ++m) {
    Rng member_rng = rng.split();
    const auto bootstrap =
        data::draw_bootstrap(num_samples, num_features, config_.bootstrap, member_rng);

    Encoder encoder(num_features, sub_dim, member_rng.next_u64());
    encoder.apply_feature_mask(bootstrap.feature_mask);

    const data::Dataset subset = train.select(bootstrap.sample_indices);
    Trainer trainer(sub_config);
    TrainResult trained = trainer.fit(encoder, subset);

    ensemble.members.push_back(
        SubModel{std::move(encoder), std::move(trained.model), bootstrap});
    // Keep the history; the model itself now lives in the ensemble member.
    trained.model = HdModel(ensemble.members.back().model.num_classes(), 1);
    ensemble.training.push_back(std::move(trained));
  }
  return ensemble;
}

}  // namespace hdc::core
