#include "core/bagging.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

std::uint32_t BaggingConfig::effective_sub_dim() const {
  if (sub_dim != 0) {
    return sub_dim;
  }
  HDC_CHECK(num_models > 0, "bagging requires at least one sub-model");
  return std::max<std::uint32_t>(1, base.dim / num_models);
}

void BaggingConfig::validate() const {
  HDC_CHECK(num_models > 0, "bagging requires at least one sub-model");
  HDC_CHECK(epochs > 0, "bagging requires at least one training iteration");
  bootstrap.validate();
  base.validate();
}

std::uint32_t BaggedEnsemble::num_classes() const {
  HDC_CHECK(!members.empty(), "empty ensemble");
  return members.front().model.num_classes();
}

std::uint32_t BaggedEnsemble::full_dim() const {
  std::uint32_t total = 0;
  for (const auto& member : members) {
    total += member.encoder.dim();
  }
  return total;
}

std::uint32_t BaggedEnsemble::predict(std::span<const float> sample) const {
  HDC_CHECK(!members.empty(), "empty ensemble");
  std::vector<float> totals(num_classes(), 0.0F);
  for (const auto& member : members) {
    const auto encoded = member.encoder.encode(sample);
    const auto member_scores = member.model.scores(encoded, Similarity::kDot);
    for (std::size_t c = 0; c < totals.size(); ++c) {
      totals[c] += member_scores[c];
    }
  }
  return static_cast<std::uint32_t>(tensor::argmax(totals));
}

std::vector<std::uint32_t> BaggedEnsemble::predict_batch(const tensor::MatrixF& samples) const {
  std::vector<std::uint32_t> out(samples.rows());
  // Sample-parallel consensus: each row's member scores sum independently.
  parallel::parallel_for(0, samples.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = predict(samples.row(i));
    }
  });
  return out;
}

std::uint32_t StackedModel::predict(std::span<const float> sample) const {
  const auto encoded = encoder.encode(sample);
  return model.predict(encoded, Similarity::kDot);
}

std::vector<std::uint32_t> StackedModel::predict_batch(const tensor::MatrixF& samples) const {
  const tensor::MatrixF encoded = encoder.encode_batch(samples);
  return model.predict_batch(encoded, Similarity::kDot);
}

StackedModel stack(const BaggedEnsemble& ensemble) {
  HDC_CHECK(!ensemble.members.empty(), "cannot stack an empty ensemble");

  std::vector<tensor::MatrixF> bases;
  std::vector<tensor::MatrixF> class_blocks;
  bases.reserve(ensemble.members.size());
  class_blocks.reserve(ensemble.members.size());
  for (const auto& member : ensemble.members) {
    bases.push_back(member.encoder.base());
    // Class blocks concatenate along the hypervector axis, i.e. columns of
    // the k x d class matrix.
    class_blocks.push_back(member.model.class_hypervectors());
  }

  return StackedModel{Encoder(tensor::hstack(bases)),
                      HdModel(tensor::hstack(class_blocks))};
}

BaggingTrainer::BaggingTrainer(BaggingConfig config) : config_(std::move(config)) {
  config_.validate();
}

BaggedEnsemble BaggingTrainer::fit(const data::Dataset& train) const {
  train.validate();
  const std::uint32_t sub_dim = config_.effective_sub_dim();
  const auto num_samples = static_cast<std::uint32_t>(train.num_samples());
  const auto num_features = static_cast<std::uint32_t>(train.num_features());

  HdConfig sub_config = config_.base;
  sub_config.dim = sub_dim;
  sub_config.epochs = config_.epochs;
  sub_config.threads = 0;  // the member level owns the pool below

  // Pre-split every member's RNG stream *before* dispatch: each member's
  // bootstrap and base-hypervector draws are a pure function of (seed, m),
  // so the trained ensemble is bit-identical for any thread count and any
  // completion order.
  Rng rng(config_.base.seed);
  std::vector<Rng> member_rngs;
  member_rngs.reserve(config_.num_models);
  for (std::uint32_t m = 0; m < config_.num_models; ++m) {
    member_rngs.push_back(rng.split());
  }

  const parallel::ScopedThreadCount thread_scope(config_.base.threads);
  std::vector<std::optional<SubModel>> members(config_.num_models);
  std::vector<TrainingRecord> records(config_.num_models);

  // Members are embarrassingly parallel; each slot is written by exactly one
  // chunk and placed by index afterwards. Nested kernels (encode, scoring)
  // run inline on the member's thread.
  parallel::parallel_for(0, config_.num_models, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t m = lo; m < hi; ++m) {
      Rng member_rng = member_rngs[m];
      const auto bootstrap =
          data::draw_bootstrap(num_samples, num_features, config_.bootstrap, member_rng);

      Encoder encoder(num_features, sub_dim, member_rng.next_u64());
      encoder.apply_feature_mask(bootstrap.feature_mask);

      const data::Dataset subset = train.select(bootstrap.sample_indices);
      const Trainer trainer(sub_config);
      TrainResult trained = trainer.fit(encoder, subset);

      records[m] = TrainingRecord{std::move(trained.history), trained.total_updates};
      members[m] = SubModel{std::move(encoder), std::move(trained.model), bootstrap};
    }
  });

  BaggedEnsemble ensemble;
  ensemble.members.reserve(config_.num_models);
  for (std::uint32_t m = 0; m < config_.num_models; ++m) {
    ensemble.members.push_back(std::move(*members[m]));
  }
  ensemble.training = std::move(records);
  return ensemble;
}

}  // namespace hdc::core
