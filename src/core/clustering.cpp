#include "core/clustering.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

void ClusteringConfig::validate() const {
  HDC_CHECK(clusters >= 2, "clustering needs at least two clusters");
  HDC_CHECK(dim > 0, "hypervector width must be positive");
  HDC_CHECK(max_iterations > 0, "at least one iteration required");
  HDC_CHECK(convergence_fraction >= 0.0 && convergence_fraction < 1.0,
            "convergence fraction must lie in [0,1)");
}

namespace {

ClusteringResult cluster_once(const Encoder& encoder, const tensor::MatrixF& encoded,
                              const ClusteringConfig& config, std::uint64_t seed);

}  // namespace

ClusteringResult cluster(const Encoder& encoder, const tensor::MatrixF& samples,
                         const ClusteringConfig& config) {
  config.validate();
  HDC_CHECK(encoder.dim() == config.dim, "encoder width disagrees with config");
  HDC_CHECK(samples.rows() >= config.clusters, "fewer samples than clusters");

  const tensor::MatrixF encoded = encoder.encode_batch(samples);

  ClusteringResult best;
  double best_similarity = -2.0;
  for (std::uint32_t restart = 0; restart < config.restarts; ++restart) {
    ClusteringResult candidate =
        cluster_once(encoder, encoded, config, config.seed + restart * 0x9E37ULL);
    double total = 0.0;
    for (std::size_t i = 0; i < encoded.rows(); ++i) {
      total += tensor::cosine(encoded.row(i),
                              candidate.centroids.row(candidate.assignments[i]));
    }
    const double similarity = total / static_cast<double>(encoded.rows());
    if (similarity > best_similarity) {
      best_similarity = similarity;
      best = std::move(candidate);
    }
  }
  return best;
}

namespace {

ClusteringResult cluster_once(const Encoder& encoder, const tensor::MatrixF& encoded,
                              const ClusteringConfig& config, std::uint64_t seed) {
  (void)encoder;
  const std::size_t n = encoded.rows();
  const std::uint32_t k = config.clusters;

  // Farthest-first initialization: random seed point, then greedily pick the
  // sample least similar to every chosen centroid.
  Rng rng(seed);
  std::vector<std::size_t> seeds;
  seeds.push_back(rng.next_below(n));
  while (seeds.size() < k) {
    std::size_t best = 0;
    float best_worst = 2.0F;
    for (std::size_t i = 0; i < n; ++i) {
      float closest = -2.0F;
      for (const std::size_t s : seeds) {
        closest = std::max(closest, tensor::cosine(encoded.row(i), encoded.row(s)));
      }
      if (closest < best_worst) {
        best_worst = closest;
        best = i;
      }
    }
    seeds.push_back(best);
  }

  ClusteringResult result;
  result.centroids = tensor::MatrixF(k, config.dim);
  for (std::uint32_t c = 0; c < k; ++c) {
    std::copy_n(encoded.row(seeds[c]).data(), config.dim, result.centroids.row(c).data());
  }
  result.assignments.assign(n, 0);

  for (std::uint32_t iteration = 0; iteration < config.max_iterations; ++iteration) {
    // Assign: nearest centroid by cosine similarity.
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t best_cluster = 0;
      float best_similarity = -2.0F;
      for (std::uint32_t c = 0; c < k; ++c) {
        const float similarity =
            tensor::cosine(encoded.row(i), result.centroids.row(c));
        if (similarity > best_similarity) {
          best_similarity = similarity;
          best_cluster = c;
        }
      }
      if (result.assignments[i] != best_cluster) {
        ++changed;
        result.assignments[i] = best_cluster;
      }
    }
    result.iterations_run = iteration + 1;

    // Update: re-bundle each centroid from its members (empty clusters keep
    // their previous centroid — the farthest-first init makes this rare).
    tensor::MatrixF next(k, config.dim, 0.0F);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = result.assignments[i];
      tensor::axpy(1.0F, encoded.row(i), next.row(c));
      ++counts[c];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        std::copy_n(result.centroids.row(c).data(), config.dim, next.row(c).data());
      }
    }
    result.centroids = std::move(next);

    if (iteration > 0 &&
        static_cast<double>(changed) <=
            config.convergence_fraction * static_cast<double>(n)) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace

double mean_centroid_similarity(const Encoder& encoder, const tensor::MatrixF& samples,
                                const ClusteringResult& result) {
  HDC_CHECK(samples.rows() == result.assignments.size(),
            "assignment count disagrees with samples");
  const tensor::MatrixF encoded = encoder.encode_batch(samples);
  double total = 0.0;
  for (std::size_t i = 0; i < encoded.rows(); ++i) {
    total += tensor::cosine(encoded.row(i),
                            result.centroids.row(result.assignments[i]));
  }
  return total / static_cast<double>(encoded.rows());
}

}  // namespace hdc::core
