#include "core/serialize.hpp"

#include "common/byte_io.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace hdc::core {
namespace {

constexpr std::uint32_t kMagic = 0x4D434448;  // "HDCM" little-endian
constexpr std::uint32_t kVersion = 1;

void write_matrix(ByteWriter& writer, const tensor::MatrixF& m) {
  writer.write<std::uint64_t>(m.rows());
  writer.write<std::uint64_t>(m.cols());
  writer.write_vector(m.storage());
}

tensor::MatrixF read_matrix(ByteReader& reader) {
  const auto rows = reader.read<std::uint64_t>();
  const auto cols = reader.read<std::uint64_t>();
  HDC_CHECK(rows > 0 && cols > 0, "serialized matrix has an empty dimension");
  HDC_CHECK(rows * cols <= (1ULL << 31), "serialized matrix exceeds sanity bound");
  std::vector<float> data = reader.read_vector<float>();
  HDC_CHECK(data.size() == rows * cols, "serialized matrix payload size mismatch");
  return tensor::MatrixF(rows, cols, std::move(data));
}

}  // namespace

std::vector<std::uint8_t> serialize_classifier(const TrainedClassifier& classifier) {
  HDC_CHECK(classifier.encoder.dim() == classifier.model.dim(),
            "encoder and model widths disagree");
  ByteWriter writer;
  writer.write<std::uint32_t>(kMagic);
  writer.write<std::uint32_t>(kVersion);
  write_matrix(writer, classifier.encoder.base());
  write_matrix(writer, classifier.model.class_hypervectors());

  const std::uint32_t checksum = crc32(writer.bytes().data(), writer.size());
  writer.write<std::uint32_t>(checksum);
  return writer.take();
}

TrainedClassifier deserialize_classifier(std::span<const std::uint8_t> bytes) {
  HDC_CHECK(bytes.size() > sizeof(std::uint32_t) * 3, "classifier buffer too small");

  const std::size_t payload_size = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_size, sizeof(stored_checksum));
  HDC_CHECK(crc32(bytes.data(), payload_size) == stored_checksum,
            "classifier buffer failed its checksum (corrupted or truncated)");

  ByteReader reader(bytes.subspan(0, payload_size));
  HDC_CHECK(reader.read<std::uint32_t>() == kMagic, "not an HDCM classifier buffer");
  HDC_CHECK(reader.read<std::uint32_t>() == kVersion, "unsupported HDCM version");

  tensor::MatrixF base = read_matrix(reader);
  tensor::MatrixF class_hvs = read_matrix(reader);
  HDC_CHECK(reader.exhausted(), "trailing bytes after classifier payload");
  HDC_CHECK(base.cols() == class_hvs.cols(),
            "serialized encoder and model widths disagree");

  return TrainedClassifier{Encoder(std::move(base)), HdModel(std::move(class_hvs))};
}

void save_classifier(const TrainedClassifier& classifier, const std::string& path) {
  const auto bytes = serialize_classifier(classifier);
  write_file(path, bytes);
}

TrainedClassifier load_classifier(const std::string& path) {
  const auto bytes = read_file(path);
  return deserialize_classifier(bytes);
}

}  // namespace hdc::core
