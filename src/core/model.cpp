#include "core/model.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "tensor/ops.hpp"

namespace hdc::core {

HdModel::HdModel(std::uint32_t num_classes, std::uint32_t dim) : class_hvs_(num_classes, dim) {
  HDC_CHECK(num_classes >= 2, "a classifier needs at least two classes");
  HDC_CHECK(dim > 0, "hypervector width must be positive");
}

HdModel::HdModel(tensor::MatrixF class_hypervectors) : class_hvs_(std::move(class_hypervectors)) {
  HDC_CHECK(class_hvs_.rows() >= 2 && class_hvs_.cols() > 0,
            "class hypervector matrix must be k x d with k >= 2");
}

std::vector<float> HdModel::scores(std::span<const float> encoded, Similarity metric) const {
  HDC_CHECK(encoded.size() == class_hvs_.cols(), "encoded width disagrees with model dim");
  std::vector<float> out(class_hvs_.rows());
  for (std::size_t c = 0; c < class_hvs_.rows(); ++c) {
    const auto hv = class_hvs_.row(c);
    out[c] = metric == Similarity::kCosine ? tensor::cosine(encoded, hv)
                                           : tensor::dot(encoded, hv);
  }
  return out;
}

std::uint32_t HdModel::predict(std::span<const float> encoded, Similarity metric) const {
  const auto s = scores(encoded, metric);
  return static_cast<std::uint32_t>(tensor::argmax(s));
}

std::vector<std::uint32_t> HdModel::predict_batch(const tensor::MatrixF& encoded,
                                                  Similarity metric) const {
  std::vector<std::uint32_t> out(encoded.rows());
  // Sample-parallel scoring: each row's prediction is independent and lands
  // in its own slot, so any thread count yields identical output.
  parallel::parallel_for(0, encoded.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = predict(encoded.row(i), metric);
    }
  });
  return out;
}

void HdModel::bundle(std::uint32_t class_index, std::span<const float> encoded, float lambda) {
  HDC_CHECK(class_index < class_hvs_.rows(), "bundle class index out of range");
  tensor::axpy(lambda, encoded, class_hvs_.row(class_index));
}

void HdModel::detach(std::uint32_t class_index, std::span<const float> encoded, float lambda) {
  HDC_CHECK(class_index < class_hvs_.rows(), "detach class index out of range");
  tensor::axpy(-lambda, encoded, class_hvs_.row(class_index));
}

}  // namespace hdc::core
