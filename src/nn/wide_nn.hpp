#pragma once

#include "core/serialize.hpp"
#include "nn/graph.hpp"

namespace hdc::nn {

/// Builders implementing the paper's central trick (Fig. 2): HDC as a
/// three-layer hyper-wide network. Both halves can be materialized
/// separately — the encode half accelerates training-set encoding on the
/// TPU, the full graph is the deployable inference model.

/// Dense(n->d) + Tanh: encoding only.
Graph build_encode_graph(const core::Encoder& encoder, const std::string& name = "hdc_encode");

/// Dense(n->d) + Tanh + Dense(d->k) + ArgMax: full inference model. The
/// second dense layer carries the transposed class-hypervector matrix so the
/// dot-product similarity is a plain matrix multiply.
///
/// With `normalize_classes` (the default) each class hypervector is scaled
/// to unit norm before being folded into the weights: the layer then ranks
/// classes exactly like the cosine similarity used during training (the
/// query norm is common to all classes and cannot change the argmax). This
/// is how the paper's dot-product "approximation" of cosine stays lossless.
Graph build_inference_graph(const core::TrainedClassifier& classifier,
                            const std::string& name = "hdc_inference",
                            bool normalize_classes = true);

}  // namespace hdc::nn
