#include "nn/graph.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::nn {

Graph::Graph(std::string name, std::uint32_t input_width)
    : name_(std::move(name)), input_width_(input_width) {
  HDC_CHECK(input_width_ > 0, "graph input width must be positive");
}

Graph& Graph::add_dense(tensor::MatrixF weights) {
  HDC_CHECK(!ends_with_argmax(), "no layer may follow ArgMax");
  HDC_CHECK(weights.rows() == output_width(), "dense layer input width mismatch");
  HDC_CHECK(weights.cols() > 0, "dense layer needs at least one output");
  layers_.emplace_back(DenseLayer{std::move(weights)});
  return *this;
}

Graph& Graph::add_tanh() {
  HDC_CHECK(!ends_with_argmax(), "no layer may follow ArgMax");
  layers_.emplace_back(TanhLayer{});
  return *this;
}

Graph& Graph::add_argmax() {
  HDC_CHECK(!ends_with_argmax(), "duplicate ArgMax layer");
  layers_.emplace_back(ArgMaxLayer{});
  return *this;
}

std::uint32_t Graph::output_width() const {
  std::uint32_t width = input_width_;
  for (const auto& layer : layers_) {
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      width = static_cast<std::uint32_t>(dense->weights.cols());
    }
  }
  return width;
}

bool Graph::ends_with_argmax() const {
  return !layers_.empty() && std::holds_alternative<ArgMaxLayer>(layers_.back());
}

void Graph::validate() const {
  std::uint32_t width = input_width_;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const auto& layer = layers_[i];
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      HDC_CHECK(dense->weights.rows() == width, "dense layer shape chain broken");
      width = static_cast<std::uint32_t>(dense->weights.cols());
    } else if (std::holds_alternative<ArgMaxLayer>(layer)) {
      HDC_CHECK(i + 1 == layers_.size(), "ArgMax must be the final layer");
    }
  }
}

std::vector<float> Graph::forward(std::span<const float> input) const {
  HDC_CHECK(input.size() == input_width_, "graph input width mismatch");
  std::vector<float> activations(input.begin(), input.end());
  for (const auto& layer : layers_) {
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      std::vector<float> next(dense->weights.cols());
      tensor::vecmat(activations, dense->weights, next);
      activations = std::move(next);
    } else if (std::holds_alternative<TanhLayer>(layer)) {
      tensor::tanh_inplace(activations);
    }
    // ArgMax is handled by predict(); forward() exposes the logits.
  }
  return activations;
}

tensor::MatrixF Graph::forward_batch(const tensor::MatrixF& inputs) const {
  HDC_CHECK(inputs.cols() == input_width_, "graph batch input width mismatch");
  tensor::MatrixF activations = inputs;
  for (const auto& layer : layers_) {
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      activations = tensor::matmul(activations, dense->weights);
    } else if (std::holds_alternative<TanhLayer>(layer)) {
      tensor::tanh_inplace({activations.data(), activations.size()});
    }
  }
  return activations;
}

std::uint32_t Graph::predict(std::span<const float> input) const {
  const auto logits = forward(input);
  return static_cast<std::uint32_t>(tensor::argmax(logits));
}

std::vector<std::uint32_t> Graph::predict_batch(const tensor::MatrixF& inputs) const {
  const tensor::MatrixF logits = forward_batch(inputs);
  std::vector<std::uint32_t> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    out[i] = static_cast<std::uint32_t>(tensor::argmax(logits.row(i)));
  }
  return out;
}

std::uint64_t Graph::macs_per_sample() const {
  std::uint64_t macs = 0;
  for (const auto& layer : layers_) {
    if (const auto* dense = std::get_if<DenseLayer>(&layer)) {
      macs += static_cast<std::uint64_t>(dense->weights.rows()) * dense->weights.cols();
    }
  }
  return macs;
}

}  // namespace hdc::nn
