#include "nn/wide_nn.hpp"

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace hdc::nn {

Graph build_encode_graph(const core::Encoder& encoder, const std::string& name) {
  Graph graph(name, encoder.num_features());
  graph.add_dense(encoder.base());
  graph.add_tanh();
  graph.validate();
  return graph;
}

Graph build_inference_graph(const core::TrainedClassifier& classifier,
                            const std::string& name, bool normalize_classes) {
  HDC_CHECK(classifier.encoder.dim() == classifier.model.dim(),
            "encoder and model widths disagree");
  Graph graph(name, classifier.encoder.num_features());
  graph.add_dense(classifier.encoder.base());
  graph.add_tanh();

  tensor::MatrixF class_hvs = classifier.model.class_hypervectors();
  if (normalize_classes) {
    for (std::size_t c = 0; c < class_hvs.rows(); ++c) {
      auto row = class_hvs.row(c);
      const float norm = tensor::l2_norm(row);
      if (norm > 0.0F) {
        for (float& w : row) {
          w /= norm;
        }
      }
    }
  }
  graph.add_dense(tensor::transpose(class_hvs));
  graph.add_argmax();
  graph.validate();
  return graph;
}

}  // namespace hdc::nn
