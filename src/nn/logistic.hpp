#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace hdc::nn {

/// Softmax-regression trainer for the classifier half of the wide NN — the
/// "what if you just trained it as a neural network?" baseline the paper's
/// HDC-as-NN framing invites. Operates on pre-encoded hypervectors (the
/// hidden-layer activations), exactly like the HDC class-hypervector update,
/// but optimizes cross-entropy with mini-batch SGD instead of applying
/// bundling/detaching on mispredictions.
///
/// Cost per epoch is ~3x the HDC update (forward logits + softmax gradient
/// outer product for every sample, not just mispredicted ones) — which is
/// the runtime argument for the HDC rule on the host CPU; the accuracy
/// comparison lives in ablation_nn_baseline.
struct LogisticConfig {
  std::uint32_t epochs = 20;
  float learning_rate = 0.05F;
  std::uint32_t batch_size = 32;
  float l2 = 0.0F;  ///< optional weight decay
  std::uint64_t seed = 42;

  void validate() const;
};

struct LogisticResult {
  tensor::MatrixF weights;  ///< k x d, row per class (same layout as HdModel)
  std::vector<double> epoch_accuracy;
};

/// Trains on encoded rows (one hypervector per row). Returns weights usable
/// directly as class hypervectors (dot-product associative search).
LogisticResult train_logistic(const tensor::MatrixF& encoded,
                              const std::vector<std::uint32_t>& labels,
                              std::uint32_t num_classes, const LogisticConfig& config);

/// argmax_c (W E) for one encoded row.
std::uint32_t logistic_predict(const tensor::MatrixF& weights,
                               std::span<const float> encoded);

}  // namespace hdc::nn
