#include "nn/logistic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace hdc::nn {

void LogisticConfig::validate() const {
  HDC_CHECK(epochs > 0, "at least one epoch required");
  HDC_CHECK(learning_rate > 0.0F, "learning rate must be positive");
  HDC_CHECK(batch_size > 0, "batch size must be positive");
  HDC_CHECK(l2 >= 0.0F, "weight decay must be non-negative");
}

std::uint32_t logistic_predict(const tensor::MatrixF& weights,
                               std::span<const float> encoded) {
  HDC_CHECK(encoded.size() == weights.cols(), "encoded width disagrees with weights");
  std::size_t best = 0;
  float best_score = -std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < weights.rows(); ++c) {
    const float score = tensor::dot(weights.row(c), encoded);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return static_cast<std::uint32_t>(best);
}

LogisticResult train_logistic(const tensor::MatrixF& encoded,
                              const std::vector<std::uint32_t>& labels,
                              std::uint32_t num_classes, const LogisticConfig& config) {
  config.validate();
  HDC_CHECK(encoded.rows() == labels.size(), "encoded rows and label count disagree");
  HDC_CHECK(encoded.rows() > 0, "cannot train on an empty set");
  HDC_CHECK(num_classes >= 2, "need at least two classes");

  const std::size_t n = encoded.rows();
  const std::size_t d = encoded.cols();
  LogisticResult result;
  result.weights = tensor::MatrixF(num_classes, d, 0.0F);

  Rng rng(config.seed);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<float> logits(num_classes);
  std::vector<float> probabilities(num_classes);

  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fresh shuffle per epoch.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }

    std::size_t correct = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(start + config.batch_size, n);
      // Accumulate the batch gradient directly into the weights with the
      // per-sample scaling folded in (plain SGD).
      const float step = config.learning_rate / static_cast<float>(end - start);
      for (std::size_t b = start; b < end; ++b) {
        const auto row = encoded.row(order[b]);
        const std::uint32_t truth = labels[order[b]];

        float max_logit = -std::numeric_limits<float>::infinity();
        for (std::uint32_t c = 0; c < num_classes; ++c) {
          logits[c] = tensor::dot(result.weights.row(c), row);
          max_logit = std::max(max_logit, logits[c]);
        }
        float denom = 0.0F;
        for (std::uint32_t c = 0; c < num_classes; ++c) {
          probabilities[c] = std::exp(logits[c] - max_logit);
          denom += probabilities[c];
        }
        std::uint32_t predicted = 0;
        for (std::uint32_t c = 0; c < num_classes; ++c) {
          probabilities[c] /= denom;
          if (probabilities[c] > probabilities[predicted]) {
            predicted = c;
          }
        }
        correct += predicted == truth ? 1 : 0;

        for (std::uint32_t c = 0; c < num_classes; ++c) {
          const float error = probabilities[c] - (c == truth ? 1.0F : 0.0F);
          if (error == 0.0F) {
            continue;
          }
          auto w = result.weights.row(c);
          const float scale = step * error;
          for (std::size_t j = 0; j < d; ++j) {
            w[j] -= scale * row[j];
          }
        }
      }
      if (config.l2 > 0.0F) {
        const float decay = 1.0F - config.learning_rate * config.l2;
        for (float& w : result.weights.storage()) {
          w *= decay;
        }
      }
    }
    result.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(n));
  }
  return result;
}

}  // namespace hdc::nn
