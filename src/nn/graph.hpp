#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "tensor/matrix.hpp"

namespace hdc::nn {

/// Fully connected layer; weights are (input_width x output_width), no bias
/// (the HDC mapping never needs one — base and class hypervectors are pure
/// linear maps).
struct DenseLayer {
  tensor::MatrixF weights;
};

/// Elementwise tanh activation (the paper's non-linear encoding).
struct TanhLayer {};

/// Final classification layer: index of the maximum logit.
struct ArgMaxLayer {};

using Layer = std::variant<DenseLayer, TanhLayer, ArgMaxLayer>;

/// Sequential float network. This is the "hyper-wide neural network"
/// interpretation of HDC from the paper (Fig. 2): Dense(n->d) + Tanh is the
/// encoder, Dense(d->k) is the associative search, ArgMax picks the class.
/// The graph is the hand-off format between the HDC core and the HDLite
/// model builder.
class Graph {
 public:
  Graph(std::string name, std::uint32_t input_width);

  const std::string& name() const noexcept { return name_; }
  std::uint32_t input_width() const noexcept { return input_width_; }
  const std::vector<Layer>& layers() const noexcept { return layers_; }

  Graph& add_dense(tensor::MatrixF weights);
  Graph& add_tanh();
  Graph& add_argmax();

  /// Width of the tensor produced by the last non-ArgMax layer.
  std::uint32_t output_width() const;

  bool ends_with_argmax() const;

  /// Throws if layer shapes do not chain or ArgMax is not last.
  void validate() const;

  /// Activations after the last non-ArgMax layer.
  std::vector<float> forward(std::span<const float> input) const;
  tensor::MatrixF forward_batch(const tensor::MatrixF& inputs) const;

  /// Class prediction (argmax over forward outputs).
  std::uint32_t predict(std::span<const float> input) const;
  std::vector<std::uint32_t> predict_batch(const tensor::MatrixF& inputs) const;

  /// Total dense-layer multiply-accumulate count for one input sample; the
  /// platform cost models price CPU inference with this.
  std::uint64_t macs_per_sample() const;

 private:
  std::string name_;
  std::uint32_t input_width_;
  std::vector<Layer> layers_;
};

}  // namespace hdc::nn
