#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hdc::tensor {

/// Dense row-major matrix. Deliberately simple: contiguous storage, value
/// semantics, bounds-checked element access. This is the single numeric
/// container shared by the HDC core, the NN graph, the HDLite interpreter
/// and the TPU simulator, so conversions between subsystems are free.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill_value = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  Matrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    HDC_CHECK(data_.size() == rows_ * cols_, "matrix storage size mismatch");
  }

  /// Brace-initialized literal, e.g. Matrix<float>({{1, 2}, {3, 4}}).
  Matrix(std::initializer_list<std::initializer_list<T>> rows_list) {
    rows_ = rows_list.size();
    cols_ = rows_ == 0 ? 0 : rows_list.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows_list) {
      HDC_CHECK(row.size() == cols_, "ragged matrix literal");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& at(std::size_t r, std::size_t c) {
    HDC_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    HDC_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops (callers validate shapes once up front).
  T& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  std::vector<T>& storage() noexcept { return data_; }
  const std::vector<T>& storage() const noexcept { return data_; }

  std::span<T> row(std::size_t r) {
    HDC_CHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    HDC_CHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<std::int8_t>;
using MatrixI32 = Matrix<std::int32_t>;

}  // namespace hdc::tensor
