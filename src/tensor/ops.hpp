#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace hdc::tensor {

/// C = A * B  (float, row-major, blocked for cache efficiency). Row blocks
/// run on the host worker pool (see common/parallel.hpp); results are
/// bit-identical for any thread count.
MatrixF matmul(const MatrixF& a, const MatrixF& b);

/// C = tanh(A * B): the HDC batch-encode kernel, with the non-linearity
/// fused into each parallel row block.
MatrixF matmul_tanh(const MatrixF& a, const MatrixF& b);

/// y = x * A  for a single row vector x (1 x k) and matrix A (k x n).
void vecmat(std::span<const float> x, const MatrixF& a, std::span<float> y);

/// C(int32) = A(int8) * B(int8), the reference the systolic array is tested
/// against. Accumulation in int32, no saturation (matches MXU semantics).
MatrixI32 matmul_i8(const MatrixI8& a, const MatrixI8& b);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> v);

/// Cosine similarity; returns 0 when either vector has zero norm.
float cosine(std::span<const float> a, std::span<const float> b);

/// Index of the maximum element (first occurrence on ties).
std::size_t argmax(std::span<const float> v);
std::size_t argmax_i32(std::span<const std::int32_t> v);

/// Elementwise tanh in place.
void tanh_inplace(std::span<float> v);

/// B = A^T.
MatrixF transpose(const MatrixF& a);

/// Horizontal concatenation [A | B | ...]: equal row counts required.
MatrixF hstack(std::span<const MatrixF> blocks);
/// Vertical concatenation: equal column counts required.
MatrixF vstack(std::span<const MatrixF> blocks);

/// Min / max over all elements (matrix must be non-empty).
struct MinMax {
  float min;
  float max;
};
MinMax min_max(const MatrixF& a);

}  // namespace hdc::tensor
