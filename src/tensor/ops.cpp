#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"

namespace hdc::tensor {
namespace {

// i-k-j loop order streams B rows and keeps C rows hot; good enough for the
// reference path (the TPU simulator owns the "fast" path in this project).
// Row blocks are independent, and the per-row accumulation order over k is
// fixed, so computing [row_begin, row_end) on different threads is
// bit-identical to the serial loop.
void matmul_rows(const MatrixF& a, const MatrixF& b, MatrixF& c, std::size_t row_begin,
                 std::size_t row_end) {
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = row_begin; i0 < row_end; i0 += kBlock) {
    const std::size_t i_end = std::min(i0 + kBlock, row_end);
    for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::size_t k_end = std::min(k0 + kBlock, k);
      for (std::size_t i = i0; i < i_end; ++i) {
        float* c_row = c.data() + i * n;
        for (std::size_t kk = k0; kk < k_end; ++kk) {
          const float a_ik = a(i, kk);
          if (a_ik == 0.0F) {
            continue;  // bagging feature masks zero whole columns of A
          }
          const float* b_row = b.data() + kk * n;
          for (std::size_t j = 0; j < n; ++j) {
            c_row[j] += a_ik * b_row[j];
          }
        }
      }
    }
  }
}

}  // namespace

MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  HDC_CHECK(a.cols() == b.rows(), "matmul inner dimensions disagree");
  MatrixF c(a.rows(), b.cols(), 0.0F);
  parallel::parallel_for(0, a.rows(), [&](std::size_t lo, std::size_t hi) {
    matmul_rows(a, b, c, lo, hi);
  });
  return c;
}

MatrixF matmul_tanh(const MatrixF& a, const MatrixF& b) {
  HDC_CHECK(a.cols() == b.rows(), "matmul inner dimensions disagree");
  MatrixF c(a.rows(), b.cols(), 0.0F);
  const std::size_t n = b.cols();
  parallel::parallel_for(0, a.rows(), [&](std::size_t lo, std::size_t hi) {
    matmul_rows(a, b, c, lo, hi);
    // tanh fused per row block: each row is finished (its full k reduction
    // done above) before the non-linearity touches it.
    tanh_inplace({c.data() + lo * n, (hi - lo) * n});
  });
  return c;
}

void vecmat(std::span<const float> x, const MatrixF& a, std::span<float> y) {
  HDC_CHECK(x.size() == a.rows(), "vecmat input length disagrees with matrix rows");
  HDC_CHECK(y.size() == a.cols(), "vecmat output length disagrees with matrix cols");
  std::fill(y.begin(), y.end(), 0.0F);
  const std::size_t n = a.cols();
  for (std::size_t k = 0; k < x.size(); ++k) {
    const float xk = x[k];
    if (xk == 0.0F) {
      continue;
    }
    const float* row = a.data() + k * n;
    for (std::size_t j = 0; j < n; ++j) {
      y[j] += xk * row[j];
    }
  }
}

MatrixI32 matmul_i8(const MatrixI8& a, const MatrixI8& b) {
  HDC_CHECK(a.cols() == b.rows(), "matmul_i8 inner dimensions disagree");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  MatrixI32 c(m, n, 0);
  parallel::parallel_for(0, m, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::int32_t* c_row = c.data() + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::int32_t a_ik = a(i, kk);
        if (a_ik == 0) {
          continue;
        }
        const std::int8_t* b_row = b.data() + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += a_ik * static_cast<std::int32_t>(b_row[j]);
        }
      }
    }
  });
  return c;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  HDC_CHECK(x.size() == y.size(), "axpy length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

float dot(std::span<const float> a, std::span<const float> b) {
  HDC_CHECK(a.size() == b.size(), "dot length mismatch");
  double acc = 0.0;  // double accumulation keeps 10k-wide dots stable
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> v) {
  double acc = 0.0;
  for (const float x : v) {
    acc += static_cast<double>(x) * static_cast<double>(x);
  }
  return static_cast<float>(std::sqrt(acc));
}

float cosine(std::span<const float> a, std::span<const float> b) {
  const float na = l2_norm(a);
  const float nb = l2_norm(b);
  if (na == 0.0F || nb == 0.0F) {
    return 0.0F;
  }
  return dot(a, b) / (na * nb);
}

std::size_t argmax(std::span<const float> v) {
  HDC_CHECK(!v.empty(), "argmax of empty span");
  return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmax_i32(std::span<const std::int32_t> v) {
  HDC_CHECK(!v.empty(), "argmax of empty span");
  return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

void tanh_inplace(std::span<float> v) {
  for (float& x : v) {
    x = std::tanh(x);
  }
}

MatrixF transpose(const MatrixF& a) {
  MatrixF t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

MatrixF hstack(std::span<const MatrixF> blocks) {
  HDC_CHECK(!blocks.empty(), "hstack of zero blocks");
  const std::size_t rows = blocks.front().rows();
  std::size_t cols = 0;
  for (const auto& block : blocks) {
    HDC_CHECK(block.rows() == rows, "hstack blocks must share a row count");
    cols += block.cols();
  }
  MatrixF out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const auto& block : blocks) {
      std::copy_n(block.data() + i * block.cols(), block.cols(),
                  out.data() + i * cols + offset);
      offset += block.cols();
    }
  }
  return out;
}

MatrixF vstack(std::span<const MatrixF> blocks) {
  HDC_CHECK(!blocks.empty(), "vstack of zero blocks");
  const std::size_t cols = blocks.front().cols();
  std::size_t rows = 0;
  for (const auto& block : blocks) {
    HDC_CHECK(block.cols() == cols, "vstack blocks must share a column count");
    rows += block.rows();
  }
  MatrixF out(rows, cols);
  std::size_t row_offset = 0;
  for (const auto& block : blocks) {
    std::copy_n(block.data(), block.size(), out.data() + row_offset * cols);
    row_offset += block.rows();
  }
  return out;
}

MinMax min_max(const MatrixF& a) {
  HDC_CHECK(!a.empty(), "min_max of empty matrix");
  const auto [lo, hi] = std::minmax_element(a.storage().begin(), a.storage().end());
  return {*lo, *hi};
}

}  // namespace hdc::tensor
