#include "data/stream.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hdc::data {

void StreamConfig::validate() const {
  spec.validate();
  HDC_CHECK(chunk_size > 0, "stream chunks must be non-empty");
  HDC_CHECK(drift_duration_chunks > 0, "drift duration must be positive");
  if (has_label_swap()) {
    HDC_CHECK(drift_swap_a != UINT32_MAX && drift_swap_b != UINT32_MAX,
              "label-swap drift needs both classes of the pair");
    HDC_CHECK(drift_swap_a != drift_swap_b, "label-swap classes must differ");
    HDC_CHECK(drift_swap_a < spec.classes && drift_swap_b < spec.classes,
              "label-swap class out of range");
  }
}

DriftStream::DriftStream(StreamConfig config) : config_(config), rng_(config.spec.seed) {
  config_.validate();
  const auto& spec = config_.spec;
  const std::uint32_t r = spec.latent_dim;

  prototypes_a_ = tensor::MatrixF(spec.classes, r);
  rng_.fill_gaussian(prototypes_a_.data(), prototypes_a_.size());
  prototypes_b_ = tensor::MatrixF(spec.classes, r);
  rng_.fill_gaussian(prototypes_b_.data(), prototypes_b_.size());

  projection_ = tensor::MatrixF(r, spec.features);
  rng_.fill_gaussian(projection_.data(), projection_.size(), 0.0F,
                     1.0F / std::sqrt(static_cast<float>(r)));
  warp_projection_ = tensor::MatrixF(r, spec.features);
  rng_.fill_gaussian(warp_projection_.data(), warp_projection_.size(), 0.0F,
                     1.0F / std::sqrt(static_cast<float>(r)));
  feature_bias_.resize(spec.features);
  rng_.fill_gaussian(feature_bias_.data(), feature_bias_.size(), 0.0F, 0.25F);
}

double DriftStream::drift_progress() const {
  if (chunks_emitted_ <= config_.drift_start_chunk) {
    return 0.0;
  }
  const double into_drift =
      static_cast<double>(chunks_emitted_ - config_.drift_start_chunk);
  return std::min(1.0, into_drift / config_.drift_duration_chunks);
}

Dataset DriftStream::next_chunk() {
  const auto& spec = config_.spec;
  const std::uint32_t r = spec.latent_dim;
  const auto mix = static_cast<float>(drift_progress());

  Dataset chunk;
  chunk.name = spec.name + "@chunk" + std::to_string(chunks_emitted_);
  chunk.num_classes = spec.classes;
  chunk.features = tensor::MatrixF(config_.chunk_size, spec.features);
  chunk.labels.resize(config_.chunk_size);

  // Label-swap drift is abrupt: it engages the moment drift begins and stays
  // (relabeling has no meaningful "partial" state, unlike prototype morphs).
  // It replaces the prototype morph rather than compounding with it — the
  // feature distribution stays stationary so the confusion matrix
  // concentrates on exactly the swapped pair, which is what the
  // `confusion_pair` alarm and dimension-attribution docs demonstrate.
  const bool swap_active = config_.has_label_swap() && mix > 0.0F;
  const float proto_mix = config_.has_label_swap() ? 0.0F : mix;

  std::vector<float> latent(r);
  for (std::uint32_t i = 0; i < config_.chunk_size; ++i) {
    const auto label = static_cast<std::uint32_t>(rng_.next_below(spec.classes));
    std::uint32_t emitted = label;
    if (swap_active) {
      if (label == config_.drift_swap_a) {
        emitted = config_.drift_swap_b;
      } else if (label == config_.drift_swap_b) {
        emitted = config_.drift_swap_a;
      }
    }
    chunk.labels[i] = emitted;
    for (std::uint32_t j = 0; j < r; ++j) {
      const float prototype = (1.0F - proto_mix) * prototypes_a_(label, j) +
                              proto_mix * prototypes_b_(label, j);
      latent[j] = prototype * spec.class_separation + spec.noise_sigma * rng_.gaussian();
    }
    auto row = chunk.features.row(i);
    for (std::uint32_t f = 0; f < spec.features; ++f) {
      float linear = feature_bias_[f];
      float warped = 0.0F;
      for (std::uint32_t j = 0; j < r; ++j) {
        linear += latent[j] * projection_(j, f);
        warped += latent[j] * warp_projection_(j, f);
      }
      row[f] = linear + spec.warp_strength * std::sin(2.0F * warped);
    }
  }

  ++chunks_emitted_;
  chunk.validate();
  return chunk;
}

}  // namespace hdc::data
