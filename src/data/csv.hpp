#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace hdc::data {

/// Options for loading a labeled CSV dataset — the entry point for users who
/// want to run the framework on the *real* FACE/ISOLET/UCIHAR/MNIST/PAMAP2
/// files (or anything else) instead of the synthetic stand-ins.
struct CsvOptions {
  /// Column holding the class label; negative counts from the end
  /// (-1 = last column, the common convention).
  std::int32_t label_column = -1;
  bool has_header = false;
  char delimiter = ',';
  /// Labels may be arbitrary integers or strings; they are densified to
  /// contiguous ids [0, k) in first-appearance order.
  /// The mapping is returned through Dataset::name-agnostic ordering and
  /// testable via the returned dataset's labels.

  void validate() const;
};

/// Parses `text` (CSV content) into a dataset. Throws hdc::Error on ragged
/// rows, non-numeric features, or an empty table.
Dataset parse_csv(const std::string& text, const CsvOptions& options = {},
                  const std::string& name = "csv");

/// Loads and parses a CSV file.
Dataset load_csv(const std::string& path, const CsvOptions& options = {});

}  // namespace hdc::data
