#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace hdc::data {

/// Bootstrap configuration for one bagging sub-model (paper Section III-B):
/// `dataset_ratio` = alpha (fraction of training samples drawn per subset),
/// `feature_ratio` = beta (fraction of features kept; the rest are masked by
/// zeroing the matching base-hypervector columns).
struct BootstrapConfig {
  double dataset_ratio = 0.6;   ///< alpha in the paper; 1.0 = full dataset
  double feature_ratio = 1.0;   ///< beta in the paper; 1.0 = feature sampling off
  bool with_replacement = true; ///< classic bootstrap draws with replacement

  void validate() const;
};

/// One drawn bootstrap: which sample rows a sub-model trains on and which
/// features stay active (mask[j] == 1 keeps feature j).
struct BootstrapSample {
  std::vector<std::uint32_t> sample_indices;
  std::vector<std::uint8_t> feature_mask;

  std::size_t active_features() const;
};

/// Draws one bootstrap for a dataset with `num_samples` rows and
/// `num_features` columns. Guarantees at least one sample and one feature.
BootstrapSample draw_bootstrap(std::uint32_t num_samples, std::uint32_t num_features,
                               const BootstrapConfig& config, Rng& rng);

}  // namespace hdc::data
