#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace hdc::data {

/// In-memory labeled dataset: one sample per row, dense float features.
struct Dataset {
  std::string name;
  tensor::MatrixF features;          ///< num_samples x num_features
  std::vector<std::uint32_t> labels; ///< one label in [0, num_classes) per row
  std::uint32_t num_classes = 0;

  std::size_t num_samples() const noexcept { return features.rows(); }
  std::size_t num_features() const noexcept { return features.cols(); }

  /// Throws hdc::Error if rows/labels disagree or any label is out of range.
  void validate() const;

  /// Row-gather: new dataset with the given sample rows (duplicates allowed,
  /// which is exactly what bootstrap resampling needs).
  Dataset select(const std::vector<std::uint32_t>& sample_indices) const;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Shuffles deterministically with `seed`, then splits off `test_fraction`.
TrainTestSplit split_dataset(const Dataset& dataset, double test_fraction, std::uint64_t seed);

/// In-place deterministic row shuffle (features and labels together).
void shuffle_dataset(Dataset& dataset, Rng& rng);

/// Per-feature min-max scaler fit on train data, applied to train and test.
/// HDC encoding quality (and int8 calibration) depends on bounded inputs.
class MinMaxNormalizer {
 public:
  void fit(const Dataset& dataset);
  void apply(Dataset& dataset) const;
  bool fitted() const noexcept { return !mins_.empty(); }

  const std::vector<float>& mins() const noexcept { return mins_; }
  const std::vector<float>& maxs() const noexcept { return maxs_; }

 private:
  std::vector<float> mins_;
  std::vector<float> maxs_;
};

/// Per-feature standardization (zero mean, unit variance, fit on train).
/// Alternative to min-max for heavy-tailed features; note that standardized
/// inputs are unbounded, so int8 input calibration clips outliers harder.
class ZScoreNormalizer {
 public:
  void fit(const Dataset& dataset);
  void apply(Dataset& dataset) const;
  bool fitted() const noexcept { return !means_.empty(); }

  const std::vector<float>& means() const noexcept { return means_; }
  const std::vector<float>& stddevs() const noexcept { return stddevs_; }

 private:
  std::vector<float> means_;
  std::vector<float> stddevs_;
};

/// Fraction of `predictions` matching `labels` (sizes must agree).
double accuracy(const std::vector<std::uint32_t>& predictions,
                const std::vector<std::uint32_t>& labels);

}  // namespace hdc::data
