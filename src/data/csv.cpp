#include "data/csv.hpp"

#include <charconv>
#include <map>

#include "common/byte_io.hpp"
#include "common/error.hpp"

namespace hdc::data {
namespace {

std::vector<std::string> split_line(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == delimiter) {
      std::size_t end = i;
      // Trim surrounding whitespace and a trailing CR.
      std::size_t begin = start;
      while (begin < end && (line[begin] == ' ' || line[begin] == '\t')) {
        ++begin;
      }
      while (end > begin &&
             (line[end - 1] == ' ' || line[end - 1] == '\t' || line[end - 1] == '\r')) {
        --end;
      }
      cells.emplace_back(line.substr(begin, end - begin));
      start = i + 1;
    }
  }
  return cells;
}

float parse_float(const std::string& cell, std::size_t line_number) {
  float value = 0.0F;
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  HDC_CHECK(ec == std::errc() && ptr == cell.data() + cell.size(),
            "non-numeric feature value '" + cell + "' on line " +
                std::to_string(line_number));
  return value;
}

}  // namespace

void CsvOptions::validate() const {
  HDC_CHECK(delimiter != '\n', "newline cannot be the delimiter");
}

Dataset parse_csv(const std::string& text, const CsvOptions& options,
                  const std::string& name) {
  options.validate();

  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty() || line == "\r") {
      continue;
    }
    if (options.has_header && rows.empty() && line_number == 1) {
      continue;
    }
    rows.push_back(split_line(line, options.delimiter));
    HDC_CHECK(rows.back().size() == rows.front().size(),
              "ragged CSV: line " + std::to_string(line_number) + " has " +
                  std::to_string(rows.back().size()) + " cells, expected " +
                  std::to_string(rows.front().size()));
  }
  HDC_CHECK(!rows.empty(), "CSV contains no data rows");
  const std::size_t num_columns = rows.front().size();
  HDC_CHECK(num_columns >= 2, "CSV needs at least one feature column plus the label");

  const std::size_t label_index =
      options.label_column >= 0
          ? static_cast<std::size_t>(options.label_column)
          : num_columns - static_cast<std::size_t>(-options.label_column);
  HDC_CHECK(label_index < num_columns, "label column out of range");

  Dataset out;
  out.name = name;
  out.features = tensor::MatrixF(rows.size(), num_columns - 1);
  out.labels.resize(rows.size());

  // Densify labels in first-appearance order so arbitrary label encodings
  // (strings, sparse integers) map to contiguous class ids.
  std::map<std::string, std::uint32_t> label_ids;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& cells = rows[r];
    auto row = out.features.row(r);
    std::size_t feature = 0;
    for (std::size_t c = 0; c < num_columns; ++c) {
      if (c == label_index) {
        continue;
      }
      row[feature++] = parse_float(cells[c], r + 1);
    }
    const auto [it, inserted] = label_ids.try_emplace(
        cells[label_index], static_cast<std::uint32_t>(label_ids.size()));
    out.labels[r] = it->second;
    (void)inserted;
  }
  out.num_classes = static_cast<std::uint32_t>(label_ids.size());
  HDC_CHECK(out.num_classes >= 2, "CSV holds fewer than two distinct classes");
  out.validate();
  return out;
}

Dataset load_csv(const std::string& path, const CsvOptions& options) {
  const auto bytes = read_file(path);
  const std::string text(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  // Name the dataset after the file's basename.
  const auto slash = path.find_last_of('/');
  const std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  return parse_csv(text, options, name);
}

}  // namespace hdc::data
