#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "tensor/matrix.hpp"

namespace hdc::data {

/// Configuration of a drifting sample stream (the "rapidly changing inputs"
/// the paper's introduction motivates frequent model updates with).
struct StreamConfig {
  SyntheticSpec spec;                    ///< task shape and distribution knobs
  std::uint32_t chunk_size = 128;        ///< samples per next_chunk() call
  /// Chunk index at which concept drift begins (UINT32_MAX = never).
  std::uint32_t drift_start_chunk = UINT32_MAX;
  /// Chunks over which the class prototypes morph to a new concept.
  std::uint32_t drift_duration_chunks = 10;
  /// Label-swap drift: once drift begins, samples generated from class
  /// `drift_swap_a`'s concept are emitted with label `drift_swap_b` and vice
  /// versa (abrupt relabeling, persists for the rest of the stream). A model
  /// trained pre-drift keeps predicting the generative class, so the
  /// confusion matrix concentrates on exactly this pair — the scenario the
  /// model-quality monitor's "confusion_pair" alarm names. UINT32_MAX on
  /// both = disabled.
  std::uint32_t drift_swap_a = UINT32_MAX;
  std::uint32_t drift_swap_b = UINT32_MAX;

  bool has_label_swap() const {
    return drift_swap_a != UINT32_MAX || drift_swap_b != UINT32_MAX;
  }

  void validate() const;
};

/// Endless labeled sample stream with optional gradual concept drift: each
/// class's latent prototype interpolates from its initial position to an
/// independent second position across the drift window, so a model trained
/// before the drift decays smoothly — exactly the regime online/adaptive
/// learners must survive.
class DriftStream {
 public:
  explicit DriftStream(StreamConfig config);

  const StreamConfig& config() const noexcept { return config_; }
  std::uint32_t chunks_emitted() const noexcept { return chunks_emitted_; }

  /// 0 before drift starts, 1 after it completes.
  double drift_progress() const;

  /// Generates the next chunk (chunk_size rows).
  Dataset next_chunk();

 private:
  StreamConfig config_;
  Rng rng_;
  tensor::MatrixF prototypes_a_;     ///< initial concept (classes x latent)
  tensor::MatrixF prototypes_b_;     ///< post-drift concept
  tensor::MatrixF projection_;       ///< latent -> feature map (fixed)
  tensor::MatrixF warp_projection_;  ///< latent -> non-linear warp (fixed)
  std::vector<float> feature_bias_;
  std::uint32_t chunks_emitted_ = 0;
};

}  // namespace hdc::data
