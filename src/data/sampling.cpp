#include "data/sampling.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hdc::data {

void BootstrapConfig::validate() const {
  HDC_CHECK(dataset_ratio > 0.0 && dataset_ratio <= 1.0, "dataset ratio must lie in (0,1]");
  HDC_CHECK(feature_ratio > 0.0 && feature_ratio <= 1.0, "feature ratio must lie in (0,1]");
}

std::size_t BootstrapSample::active_features() const {
  return static_cast<std::size_t>(
      std::count(feature_mask.begin(), feature_mask.end(), std::uint8_t{1}));
}

BootstrapSample draw_bootstrap(std::uint32_t num_samples, std::uint32_t num_features,
                               const BootstrapConfig& config, Rng& rng) {
  config.validate();
  HDC_CHECK(num_samples > 0 && num_features > 0, "bootstrap over empty dataset");

  const auto subset_size = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.dataset_ratio * num_samples));
  const auto kept_features = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config.feature_ratio * num_features));

  BootstrapSample sample;
  sample.sample_indices = config.with_replacement
                              ? rng.sample_with_replacement(num_samples, subset_size)
                              : rng.sample_without_replacement(num_samples, subset_size);

  sample.feature_mask.assign(num_features, std::uint8_t{0});
  for (const std::uint32_t j : rng.sample_without_replacement(num_features, kept_features)) {
    sample.feature_mask[j] = 1;
  }
  return sample;
}

}  // namespace hdc::data
