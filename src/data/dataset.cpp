#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hdc::data {

void Dataset::validate() const {
  HDC_CHECK(features.rows() == labels.size(), "feature rows and label count disagree");
  HDC_CHECK(num_classes > 0, "dataset declares zero classes");
  for (const std::uint32_t label : labels) {
    HDC_CHECK(label < num_classes, "label out of range for declared class count");
  }
}

Dataset Dataset::select(const std::vector<std::uint32_t>& sample_indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  out.features = tensor::MatrixF(sample_indices.size(), num_features());
  out.labels.resize(sample_indices.size());
  for (std::size_t i = 0; i < sample_indices.size(); ++i) {
    const std::uint32_t src = sample_indices[i];
    HDC_CHECK(src < num_samples(), "select index out of range");
    std::copy_n(features.data() + static_cast<std::size_t>(src) * num_features(),
                num_features(), out.features.data() + i * num_features());
    out.labels[i] = labels[src];
  }
  return out;
}

void shuffle_dataset(Dataset& dataset, Rng& rng) {
  const std::size_t n = dataset.num_samples();
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    if (j == i - 1) {
      continue;
    }
    std::swap(dataset.labels[i - 1], dataset.labels[j]);
    auto row_a = dataset.features.row(i - 1);
    auto row_b = dataset.features.row(j);
    std::swap_ranges(row_a.begin(), row_a.end(), row_b.begin());
  }
}

TrainTestSplit split_dataset(const Dataset& dataset, double test_fraction, std::uint64_t seed) {
  HDC_CHECK(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must lie in (0,1)");
  Dataset shuffled = dataset;
  Rng rng(seed);
  shuffle_dataset(shuffled, rng);

  const auto n = static_cast<std::uint32_t>(shuffled.num_samples());
  const auto n_test = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(n * test_fraction));
  HDC_CHECK(n_test < n, "split leaves no training samples");

  std::vector<std::uint32_t> test_idx(n_test);
  std::iota(test_idx.begin(), test_idx.end(), 0);
  std::vector<std::uint32_t> train_idx(n - n_test);
  std::iota(train_idx.begin(), train_idx.end(), n_test);

  return {shuffled.select(train_idx), shuffled.select(test_idx)};
}

void MinMaxNormalizer::fit(const Dataset& dataset) {
  HDC_CHECK(dataset.num_samples() > 0, "cannot fit normalizer on empty dataset");
  const std::size_t n = dataset.num_features();
  mins_.assign(n, std::numeric_limits<float>::max());
  maxs_.assign(n, std::numeric_limits<float>::lowest());
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    const auto row = dataset.features.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      mins_[j] = std::min(mins_[j], row[j]);
      maxs_[j] = std::max(maxs_[j], row[j]);
    }
  }
}

void MinMaxNormalizer::apply(Dataset& dataset) const {
  HDC_CHECK(fitted(), "normalizer used before fit");
  HDC_CHECK(dataset.num_features() == mins_.size(), "normalizer feature count mismatch");
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    auto row = dataset.features.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      const float range = maxs_[j] - mins_[j];
      // Constant features map to 0 instead of dividing by zero; out-of-range
      // test values are clamped so encoding inputs stay in [0, 1].
      row[j] = range > 0.0F ? std::clamp((row[j] - mins_[j]) / range, 0.0F, 1.0F) : 0.0F;
    }
  }
}

void ZScoreNormalizer::fit(const Dataset& dataset) {
  HDC_CHECK(dataset.num_samples() > 0, "cannot fit normalizer on empty dataset");
  const std::size_t n = dataset.num_features();
  const auto rows = static_cast<double>(dataset.num_samples());
  means_.assign(n, 0.0F);
  stddevs_.assign(n, 0.0F);

  std::vector<double> sums(n, 0.0);
  std::vector<double> sums_sq(n, 0.0);
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    const auto row = dataset.features.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      sums[j] += row[j];
      sums_sq[j] += static_cast<double>(row[j]) * row[j];
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double mean = sums[j] / rows;
    const double variance = std::max(0.0, sums_sq[j] / rows - mean * mean);
    means_[j] = static_cast<float>(mean);
    stddevs_[j] = static_cast<float>(std::sqrt(variance));
  }
}

void ZScoreNormalizer::apply(Dataset& dataset) const {
  HDC_CHECK(fitted(), "normalizer used before fit");
  HDC_CHECK(dataset.num_features() == means_.size(), "normalizer feature count mismatch");
  for (std::size_t i = 0; i < dataset.num_samples(); ++i) {
    auto row = dataset.features.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      // Constant features map to 0 instead of dividing by zero.
      row[j] = stddevs_[j] > 0.0F ? (row[j] - means_[j]) / stddevs_[j] : 0.0F;
    }
  }
}

double accuracy(const std::vector<std::uint32_t>& predictions,
                const std::vector<std::uint32_t>& labels) {
  HDC_CHECK(predictions.size() == labels.size(), "prediction/label count mismatch");
  HDC_CHECK(!labels.empty(), "accuracy over empty set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    correct += predictions[i] == labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace hdc::data
