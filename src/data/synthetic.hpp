#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hdc::data {

/// Specification of a synthetic classification task. The five presets in
/// `paper_datasets()` mirror Table I of the paper exactly in (samples,
/// features, classes); the distributional knobs are chosen so HDC reaches
/// realistic accuracy (high but not saturated) at d = 10,000.
///
/// Generation model: each class owns a latent prototype z_c in R^latent_dim;
/// a sample draws z = z_c * class_separation + noise_sigma * eps, maps it to
/// feature space through a fixed random projection, and passes through a
/// bounded non-linearity so the task is not trivially linear in feature
/// space (this is what motivates the paper's non-linear tanh encoding).
struct SyntheticSpec {
  std::string name;
  std::uint32_t samples = 0;
  std::uint32_t features = 0;
  std::uint32_t classes = 0;
  std::string description;

  // Distribution shape.
  std::uint32_t latent_dim = 24;
  float class_separation = 2.0F;
  float noise_sigma = 1.0F;
  float warp_strength = 0.35F;  ///< weight of the non-linear feature warp
  std::uint64_t seed = 1;

  void validate() const;
};

/// Generates the dataset. `max_samples` (0 = all) caps the row count so
/// functional accuracy experiments can run at reduced scale while the
/// full-scale `samples` figure still drives the analytic timing model.
Dataset generate_synthetic(const SyntheticSpec& spec, std::uint32_t max_samples = 0);

/// The five Table-I presets: FACE, ISOLET, UCIHAR, MNIST, PAMAP2.
const std::vector<SyntheticSpec>& paper_datasets();

/// Lookup by case-sensitive name; throws hdc::Error on unknown names.
const SyntheticSpec& paper_dataset(const std::string& name);

}  // namespace hdc::data
