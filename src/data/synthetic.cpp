#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hdc::data {

void SyntheticSpec::validate() const {
  HDC_CHECK(!name.empty(), "synthetic spec requires a name");
  HDC_CHECK(samples > 0, "synthetic spec requires samples > 0");
  HDC_CHECK(features > 0, "synthetic spec requires features > 0");
  HDC_CHECK(classes >= 2, "synthetic spec requires at least two classes");
  HDC_CHECK(latent_dim > 0, "latent dimension must be positive");
  HDC_CHECK(noise_sigma >= 0.0F, "noise sigma must be non-negative");
}

Dataset generate_synthetic(const SyntheticSpec& spec, std::uint32_t max_samples) {
  spec.validate();
  const std::uint32_t n_rows =
      max_samples == 0 ? spec.samples : std::min(spec.samples, max_samples);

  Rng rng(spec.seed);

  // Fixed task geometry: class prototypes and the latent->feature projection
  // depend only on the seed, so truncated and full generations agree on the
  // underlying task (the first max_samples rows are identical).
  const std::uint32_t r = spec.latent_dim;
  tensor::MatrixF prototypes(spec.classes, r);
  rng.fill_gaussian(prototypes.data(), prototypes.size());

  tensor::MatrixF projection(r, spec.features);
  rng.fill_gaussian(projection.data(), projection.size(), 0.0F,
                    1.0F / std::sqrt(static_cast<float>(r)));
  tensor::MatrixF warp_projection(r, spec.features);
  rng.fill_gaussian(warp_projection.data(), warp_projection.size(), 0.0F,
                    1.0F / std::sqrt(static_cast<float>(r)));
  std::vector<float> feature_bias(spec.features);
  rng.fill_gaussian(feature_bias.data(), feature_bias.size(), 0.0F, 0.25F);

  Dataset out;
  out.name = spec.name;
  out.num_classes = spec.classes;
  out.features = tensor::MatrixF(n_rows, spec.features);
  out.labels.resize(n_rows);

  std::vector<float> latent(r);
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    // Round-robin labels keep every class populated even at tiny row counts.
    const std::uint32_t label = i % spec.classes;
    out.labels[i] = label;

    for (std::uint32_t j = 0; j < r; ++j) {
      latent[j] = prototypes(label, j) * spec.class_separation +
                  spec.noise_sigma * rng.gaussian();
    }

    auto row = out.features.row(i);
    for (std::uint32_t f = 0; f < spec.features; ++f) {
      float linear = feature_bias[f];
      float warped = 0.0F;
      for (std::uint32_t j = 0; j < r; ++j) {
        linear += latent[j] * projection(j, f);
        warped += latent[j] * warp_projection(j, f);
      }
      // Bounded non-linear warp: keeps features in a sane range and makes
      // the class boundary non-linear in feature space.
      row[f] = linear + spec.warp_strength * std::sin(2.0F * warped);
    }
  }

  shuffle_dataset(out, rng);
  out.validate();
  return out;
}

const std::vector<SyntheticSpec>& paper_datasets() {
  static const std::vector<SyntheticSpec> specs = [] {
    std::vector<SyntheticSpec> s;
    // Shapes copied verbatim from Table I of the paper.
    s.push_back({.name = "FACE",
                 .samples = 80854,
                 .features = 608,
                 .classes = 2,
                 .description = "Facial images (synthetic stand-in)",
                 .latent_dim = 24,
                 .class_separation = 0.8F,
                 .noise_sigma = 1.3F,
                 .warp_strength = 0.5F,
                 .seed = 0xFACE});
    s.push_back({.name = "ISOLET",
                 .samples = 7797,
                 .features = 617,
                 .classes = 26,
                 .description = "Speech data (synthetic stand-in)",
                 .latent_dim = 32,
                 .class_separation = 1.1F,
                 .noise_sigma = 1.2F,
                 .warp_strength = 0.5F,
                 .seed = 0x150});
    s.push_back({.name = "UCIHAR",
                 .samples = 7667,
                 .features = 561,
                 .classes = 12,
                 .description = "Human activity logs (synthetic stand-in)",
                 .latent_dim = 28,
                 .class_separation = 1.0F,
                 .noise_sigma = 1.2F,
                 .warp_strength = 0.5F,
                 .seed = 0x4A2});
    s.push_back({.name = "MNIST",
                 .samples = 60000,
                 .features = 784,
                 .classes = 10,
                 .description = "Handwritten digits (synthetic stand-in)",
                 .latent_dim = 30,
                 .class_separation = 1.0F,
                 .noise_sigma = 1.2F,
                 .warp_strength = 0.5F,
                 .seed = 0x3157});
    s.push_back({.name = "PAMAP2",
                 .samples = 32768,
                 .features = 27,
                 .classes = 5,
                 .description = "Human activity logs (synthetic stand-in)",
                 .latent_dim = 12,
                 .class_separation = 1.9F,
                 .noise_sigma = 1.0F,
                 .warp_strength = 0.4F,
                 .seed = 0x9A3A});
    return s;
  }();
  return specs;
}

const SyntheticSpec& paper_dataset(const std::string& name) {
  for (const auto& spec : paper_datasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  throw Error("unknown paper dataset: " + name);
}

}  // namespace hdc::data
